package rdma

import (
	"errors"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
)

func TestOneSidedReadWrite(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 64)

	src := []byte("hello, fabric")
	if err := f.Write(1, "mem", 8, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := f.Read(1, "mem", 8, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Fatalf("read back %q", dst)
	}
	r, w, _, _, _, _ := f.Stats().Snapshot()
	if r != 1 || w != 1 {
		t.Fatalf("stats reads=%d writes=%d", r, w)
	}
}

func TestReadWrite64(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 16)
	if err := f.Write64(1, "mem", 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := f.Read64(1, "mem", 8)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("v=%x err=%v", v, err)
	}
}

func TestBoundsChecking(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 16)
	if err := f.Write(1, "mem", 10, make([]byte, 8)); !errors.Is(err, common.ErrOutOfBounds) {
		t.Fatalf("out-of-bounds write err = %v", err)
	}
	if err := f.Read(1, "mem", -1, make([]byte, 4)); !errors.Is(err, common.ErrOutOfBounds) {
		t.Fatalf("negative offset err = %v", err)
	}
}

func TestCAS64(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 8)
	prev, err := f.CAS64(1, "mem", 0, 0, 42)
	if err != nil || prev != 0 {
		t.Fatalf("prev=%d err=%v", prev, err)
	}
	prev, err = f.CAS64(1, "mem", 0, 0, 99)
	if err != nil || prev != 42 {
		t.Fatalf("failed CAS should observe 42, got %d err=%v", prev, err)
	}
	v, _ := f.Read64(1, "mem", 0)
	if v != 42 {
		t.Fatalf("value after failed CAS = %d", v)
	}
}

func TestFetchAdd64Concurrent(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("ctr", 8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if _, err := f.FetchAdd64(1, "ctr", 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := f.Read64(1, "ctr", 0)
	if v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
}

func TestRPC(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(2)
	ep.Serve("echo", func(req []byte) ([]byte, error) {
		out := append([]byte("re:"), req...)
		return out, nil
	})
	resp, err := f.Call(2, "echo", []byte("ping"))
	if err != nil || string(resp) != "re:ping" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if _, err := f.Call(2, "nosuch", nil); err == nil {
		t.Fatal("call to unknown service should fail")
	}
}

func TestNodeDown(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 8)
	ep.Serve("svc", func([]byte) ([]byte, error) { return nil, nil })
	ep.Deregister()

	if err := f.Write64(1, "mem", 0, 1); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("write to dead node err = %v", err)
	}
	if _, err := f.Call(1, "svc", nil); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("call to dead node err = %v", err)
	}
	// Re-register revives the node with fresh regions.
	ep2 := f.Register(1)
	ep2.RegisterRegion("mem", 8)
	if err := f.Write64(1, "mem", 0, 7); err != nil {
		t.Fatalf("write after revive: %v", err)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	f := NewFabric(Latency{})
	f.Register(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double register")
		}
	}()
	f.Register(1)
}

func TestLocalAccess(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	r := ep.RegisterRegion("mem", 32)
	if err := r.LocalWrite64(0, 123); err != nil {
		t.Fatal(err)
	}
	v, err := r.LocalRead64(0)
	if err != nil || v != 123 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	prev, err := r.LocalCAS64(0, 123, 456)
	if err != nil || prev != 123 {
		t.Fatalf("cas prev=%d err=%v", prev, err)
	}
	// Local access must not count as fabric traffic.
	reads, writes, atomics, _, _, _ := f.Stats().Snapshot()
	if reads+writes+atomics != 0 {
		t.Fatalf("local ops counted as fabric traffic: %d/%d/%d", reads, writes, atomics)
	}
}

func TestMissingRegion(t *testing.T) {
	f := NewFabric(Latency{})
	f.Register(1)
	if err := f.Read(1, "nope", 0, make([]byte, 1)); err == nil {
		t.Fatal("read of unknown region should fail")
	}
}

func TestLatencyInjection(t *testing.T) {
	// The host's sleep floor is coarse (often ~1ms), so inject well above
	// it and just verify the delay is felt.
	f := NewFabric(Latency{OneSided: 5 * time.Millisecond, RPC: 5 * time.Millisecond})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 8)
	ep.Serve("svc", func([]byte) ([]byte, error) { return nil, nil })

	start := time.Now()
	if err := f.Write64(1, "mem", 0, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("one-sided write took %v, injection not applied", d)
	}
	start = time.Now()
	if _, err := f.Call(1, "svc", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("rpc took %v, injection not applied", d)
	}
}
