package rdma

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
)

// Connection-level fault injection for the socket transport. Where the
// fabric's verb injector (Fabric.SetInjection) models media faults on
// individual operations, LinkFaults models the network between processes:
// partitions that refuse connections, black holes that swallow frames on a
// live TCP connection (the classic half-open failure a crashed switch
// leaves behind), and flapping links that die and redial in a loop. Rules
// are installed at runtime — mpserver exposes them over POST /netfault — so
// a chaos harness can cut, degrade, and heal specific peer pairs while the
// cluster is under load.
//
// Rules match peers by substring against the link's advertised identity
// (the dialer sees "addr/serverName", the acceptor sees the dialer's
// configured name) and, for dial refusal, the dial address. An empty
// pattern matches every peer. Every rule expires on its own; healing early
// is ClearLinkFaults.

// Link-fault modes.
const (
	// FaultPartition refuses new dials to matching peers and kills matching
	// live links. Verbs fail fast with ErrUnreachable until healed.
	FaultPartition = "partition"
	// FaultBlackhole silently discards frames on matching live links, in
	// both directions, without closing the connection — a half-open link.
	// Keepalive idle detection is what eventually tears it down.
	FaultBlackhole = "blackhole"
	// FaultFlap kills matching live links every flapInterval while the rule
	// is active; redials succeed, so the link oscillates.
	FaultFlap = "flap"
)

// flapIntervalNs is the kill cadence of FaultFlap rules (atomic so tests
// can shorten it without racing live flap loops).
var flapIntervalNs atomic.Int64

func init() { flapIntervalNs.Store(int64(500 * time.Millisecond)) }

type linkFaultRule struct {
	peer  string // substring pattern; "" matches all
	mode  string
	until time.Time
}

func (r *linkFaultRule) expired(now time.Time) bool { return now.After(r.until) }

func (r *linkFaultRule) matches(detail string) bool {
	return r.peer == "" || strings.Contains(detail, r.peer)
}

// LinkFaults is the per-fabric registry of connection-level fault rules,
// plus the set of live socket links they apply to. The zero value is ready;
// the hot-path checks are one atomic load while no rule is installed.
type LinkFaults struct {
	// active counts installed (possibly expired) rules so send/readLoop pay
	// one atomic load when chaos is off.
	active atomic.Int64

	mu    sync.Mutex
	rules []linkFaultRule
	links map[*peerLink]struct{}
}

// LinkFaultState is one active rule, as reported by Snapshot.
type LinkFaultState struct {
	Peer      string  `json:"peer"`
	Mode      string  `json:"mode"`
	RemainSec float64 `json:"remain_sec"`
}

// register tracks a live link so partition/flap rules can kill it.
// Immediately applies any standing partition to it.
func (lf *LinkFaults) register(l *peerLink) {
	if lf == nil {
		return
	}
	lf.mu.Lock()
	if lf.links == nil {
		lf.links = make(map[*peerLink]struct{})
	}
	lf.links[l] = struct{}{}
	kill := lf.active.Load() > 0 && lf.matchLocked(l.name, FaultPartition, time.Now())
	lf.mu.Unlock()
	if kill {
		go l.fail(errPeerUnreachable(l.name + " (injected partition)"))
	}
}

func (lf *LinkFaults) deregister(l *peerLink) {
	if lf == nil {
		return
	}
	lf.mu.Lock()
	delete(lf.links, l)
	lf.mu.Unlock()
}

// Set installs (or refreshes) one rule for d. Partition rules kill matching
// live links immediately; flap rules start their kill loop.
func (lf *LinkFaults) Set(peer, mode string, d time.Duration) error {
	switch mode {
	case FaultPartition, FaultBlackhole, FaultFlap:
	default:
		return fmt.Errorf("rdma: link-fault mode %q (want partition|blackhole|flap): %w", mode, common.ErrCorrupt)
	}
	if d <= 0 {
		return fmt.Errorf("rdma: link-fault duration %v: %w", d, common.ErrCorrupt)
	}
	now := time.Now()
	lf.mu.Lock()
	lf.pruneLocked(now)
	replaced := false
	for i := range lf.rules {
		if lf.rules[i].peer == peer && lf.rules[i].mode == mode {
			lf.rules[i].until = now.Add(d)
			replaced = true
			break
		}
	}
	if !replaced {
		lf.rules = append(lf.rules, linkFaultRule{peer: peer, mode: mode, until: now.Add(d)})
	}
	lf.active.Store(int64(len(lf.rules)))
	victims := lf.victimsLocked(peer, mode)
	lf.mu.Unlock()
	for _, l := range victims {
		l.fail(errPeerUnreachable(l.name + " (injected " + mode + ")"))
	}
	if mode == FaultFlap && !replaced {
		go lf.flapLoop(peer, now.Add(d))
	}
	return nil
}

// Clear removes every rule matching peer ("" clears all) and returns how
// many it removed.
func (lf *LinkFaults) Clear(peer string) int {
	lf.mu.Lock()
	kept := lf.rules[:0]
	removed := 0
	for _, r := range lf.rules {
		if peer == "" || r.peer == peer {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	lf.rules = kept
	lf.active.Store(int64(len(lf.rules)))
	lf.mu.Unlock()
	return removed
}

// Snapshot reports the active rules (for /netfault GET and stats).
func (lf *LinkFaults) Snapshot() []LinkFaultState {
	now := time.Now()
	lf.mu.Lock()
	defer lf.mu.Unlock()
	lf.pruneLocked(now)
	out := make([]LinkFaultState, 0, len(lf.rules))
	for _, r := range lf.rules {
		out = append(out, LinkFaultState{
			Peer: r.peer, Mode: r.mode, RemainSec: r.until.Sub(now).Seconds(),
		})
	}
	return out
}

// denyDial reports whether a dial to detail is partitioned away.
func (lf *LinkFaults) denyDial(detail string) bool {
	if lf == nil || lf.active.Load() == 0 {
		return false
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.matchLocked(detail, FaultPartition, time.Now())
}

// drop reports whether a frame to/from the link named detail should be
// silently discarded (black hole).
func (lf *LinkFaults) drop(detail string) bool {
	if lf == nil || lf.active.Load() == 0 {
		return false
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.matchLocked(detail, FaultBlackhole, time.Now())
}

func (lf *LinkFaults) matchLocked(detail, mode string, now time.Time) bool {
	for i := range lf.rules {
		r := &lf.rules[i]
		if r.mode == mode && !r.expired(now) && r.matches(detail) {
			return true
		}
	}
	return false
}

// victimsLocked collects live links a freshly installed partition/flap rule
// should kill now (blackhole keeps links alive — that is its point).
func (lf *LinkFaults) victimsLocked(peer, mode string) []*peerLink {
	if mode == FaultBlackhole {
		return nil
	}
	var out []*peerLink
	for l := range lf.links {
		r := linkFaultRule{peer: peer, mode: mode}
		if r.matches(l.name) {
			out = append(out, l)
		}
	}
	return out
}

// flapLoop kills matching links every flap interval until the rule expires
// or is cleared. The cadence is captured once at start.
func (lf *LinkFaults) flapLoop(peer string, until time.Time) {
	cadence := time.Duration(flapIntervalNs.Load())
	for {
		time.Sleep(cadence)
		now := time.Now()
		lf.mu.Lock()
		live := lf.matchRuleLocked(peer, FaultFlap, now)
		victims := lf.victimsLocked(peer, FaultFlap)
		lf.mu.Unlock()
		if !live || now.After(until) {
			return
		}
		for _, l := range victims {
			l.fail(errPeerUnreachable(l.name + " (injected flap)"))
		}
	}
}

func (lf *LinkFaults) matchRuleLocked(peer, mode string, now time.Time) bool {
	for i := range lf.rules {
		r := &lf.rules[i]
		if r.peer == peer && r.mode == mode && !r.expired(now) {
			return true
		}
	}
	return false
}

func (lf *LinkFaults) pruneLocked(now time.Time) {
	kept := lf.rules[:0]
	for _, r := range lf.rules {
		if !r.expired(now) {
			kept = append(kept, r)
		}
	}
	lf.rules = kept
	lf.active.Store(int64(len(lf.rules)))
}

// Faults returns the fabric's connection-fault registry.
func (f *Fabric) Faults() *LinkFaults { return &f.faults }

// SetLinkFault installs a connection-level fault rule on this fabric's
// socket links: mode is partition|blackhole|flap (see the Fault* constants)
// or "heal" to clear rules matching peer. This is the programmatic surface
// behind mpserver's POST /netfault.
func (f *Fabric) SetLinkFault(peer, mode string, d time.Duration) error {
	if mode == "heal" || mode == "clear" {
		f.faults.Clear(peer)
		return nil
	}
	return f.faults.Set(peer, mode, d)
}

// --- reconnect backoff -------------------------------------------------------

// Redial backoff bounds: a dead slot's first redial waits redialBackoffMin,
// doubling per consecutive failure to redialBackoffMax, with ±25% jitter so
// a cluster of clients does not thundering-herd a restarted peer. Success
// resets the slot to zero (the next failure starts over at the minimum).
var (
	redialBackoffMin = 50 * time.Millisecond
	redialBackoffMax = 2 * time.Second
)

// nextBackoff returns the undithered backoff that follows cur: min on the
// first failure, doubling up to max. Jitter is applied separately (jittered)
// when the wait deadline is computed, so repeated doubling never compounds
// the dither.
func nextBackoff(cur time.Duration) time.Duration {
	if cur < redialBackoffMin {
		return redialBackoffMin
	}
	next := cur * 2
	if next > redialBackoffMax {
		return redialBackoffMax
	}
	return next
}

// jittered spreads d by ±25%.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
}
