package rdma

import (
	"polardbmp/internal/common"
)

// Vectored ("doorbell-batched") verbs: one work-request list rung with a
// single doorbell. A real RNIC charges one MMIO + one completion for the
// whole chain, which is why coalescing one-sided ops is the standard lever
// for RDMA-resident data structures; the simulation mirrors that by charging
// ONE injected latency and consulting the fault injector ONCE per batch.
//
// Fault semantics: the injection decision is taken before any segment
// executes, so a dropped/errored batch fails atomically — no segment lands,
// exactly like a chain whose doorbell write never reached the NIC. Segment
// bounds are also validated up front so a malformed element cannot leave a
// partially-applied batch behind. Stats count one op per batch (the doorbell
// is the op-budget unit) while byte counters accumulate every segment.

// Seg is one scatter/gather element of a vectored one-sided verb: Buf is
// read into (ReadV) or written from (WriteV) at Off within the region.
type Seg struct {
	Off int
	Buf []byte
}

func segTotal(segs []Seg) int {
	n := 0
	for _, s := range segs {
		n += len(s.Buf)
	}
	return n
}

// ReadV performs a doorbell-batched one-sided read of every segment from
// (node, region). Empty batches are no-ops; a single-segment batch is
// equivalent to Read.
func (c Conn) ReadV(node common.NodeID, region string, segs []Seg) error {
	if err := c.dl.Err(); err != nil {
		return err
	}
	return c.f.readV(c.src, node, region, segs, c.ss)
}

// WriteV performs a doorbell-batched one-sided write of every segment to
// (node, region).
func (c Conn) WriteV(node common.NodeID, region string, segs []Seg) error {
	if err := c.dl.Err(); err != nil {
		return err
	}
	return c.f.writeV(c.src, node, region, segs, c.ss)
}

// CallBatch invokes service once per request in a single fabric round trip
// (the RPC analogue of a doorbell chain). On success resp[i] answers
// reqs[i]. A mid-batch handler error fails the whole call; callers must
// treat the batch as one idempotent unit and retry it whole.
func (c Conn) CallBatch(node common.NodeID, service string, reqs [][]byte) ([][]byte, error) {
	if err := c.dl.Err(); err != nil {
		return nil, err
	}
	return c.f.callBatch(c.src, node, service, reqs, c.ss)
}

// ReadV is the unbound-source form of Conn.ReadV.
func (f *Fabric) ReadV(node common.NodeID, region string, segs []Seg) error {
	return f.readV(common.AnyNode, node, region, segs, nil)
}

// WriteV is the unbound-source form of Conn.WriteV.
func (f *Fabric) WriteV(node common.NodeID, region string, segs []Seg) error {
	return f.writeV(common.AnyNode, node, region, segs, nil)
}

// CallBatch is the unbound-source form of Conn.CallBatch.
func (f *Fabric) CallBatch(node common.NodeID, service string, reqs [][]byte) ([][]byte, error) {
	return f.callBatch(common.AnyNode, node, service, reqs, nil)
}

func (f *Fabric) readV(src, node common.NodeID, region string, segs []Seg, ss *Stats) error {
	if len(segs) == 0 {
		return nil
	}
	dup, _, err := f.inject(common.FaultRead, src, node, region, segTotal(segs))
	if err != nil {
		return err
	}
	return f.transportFor(node).ReadV(src, node, region, segs, dup, ss)
}

func (f *Fabric) writeV(src, node common.NodeID, region string, segs []Seg, ss *Stats) error {
	if len(segs) == 0 {
		return nil
	}
	dup, _, err := f.inject(common.FaultWrite, src, node, region, segTotal(segs))
	if err != nil {
		return err
	}
	return f.transportFor(node).WriteV(src, node, region, segs, dup, ss)
}

func (f *Fabric) callBatch(src, node common.NodeID, service string, reqs [][]byte, ss *Stats) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	total := 0
	for _, req := range reqs {
		total += len(req)
	}
	_, dropReply, err := f.inject(common.FaultRPC, src, node, service, total)
	if err != nil {
		return nil, err
	}
	return f.transportFor(node).CallBatch(src, node, service, reqs, dropReply, ss)
}
