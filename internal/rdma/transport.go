package rdma

import (
	"sync/atomic"

	"polardbmp/internal/common"
)

// Transport executes fabric verbs against a set of endpoints. The issuing
// Fabric consults its fault injector first and then hands the op (plus the
// injector's duplicate/drop-reply directives) to the transport that owns the
// destination node:
//
//   - procTransport reaches endpoints registered in this process directly —
//     the original in-process fabric, unchanged semantics and cost.
//   - Peer (socket.go) reaches endpoints hosted by another OS process over a
//     length-prefixed binary frame protocol.
//
// Stats accounting lives inside the transport so the op/byte counters keep
// their exact in-process semantics (an op is counted only once destination
// checks pass; remote transports count on a successful response).
type Transport interface {
	Read(src, node common.NodeID, region string, off int, dst []byte, dup bool, ss *Stats) error
	Write(src, node common.NodeID, region string, off int, data []byte, dup bool, ss *Stats) error
	ReadV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error
	WriteV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error
	CAS64(src, node common.NodeID, region string, off int, old, new uint64, ss *Stats) (uint64, error)
	FetchAdd64(src, node common.NodeID, region string, off int, delta uint64, ss *Stats) (uint64, error)
	Call(src, node common.NodeID, service string, req []byte, dropReply bool, ss *Stats) ([]byte, error)
	CallBatch(src, node common.NodeID, service string, reqs [][]byte, dropReply bool, ss *Stats) ([][]byte, error)
	Close() error
}

// routeTable is the fabric's immutable routing snapshot, swapped atomically
// on attach/detach so the hot path pays one atomic load and no locks. A nil
// table (the common single-process case) short-circuits straight to the
// in-process transport.
type routeTable struct {
	remotes map[common.NodeID]Transport
	def     Transport // default route for nodes not known locally (uplink)
}

// transportFor picks the transport owning node: an explicit remote route
// first, then the default route for nodes with no local endpoint, then the
// in-process transport.
func (f *Fabric) transportFor(node common.NodeID) Transport {
	rt := f.routes.Load()
	if rt == nil {
		return f.local
	}
	if t, ok := rt.remotes[node]; ok {
		return t
	}
	if rt.def != nil && !f.hasEndpoint(node) {
		return rt.def
	}
	return f.local
}

// hasEndpoint reports whether node ever registered locally. A locally
// registered-but-down endpoint stays local on purpose: the crash of a node
// this process hosts must surface as ErrNodeDown, not be routed away.
func (f *Fabric) hasEndpoint(node common.NodeID) bool {
	f.mu.RLock()
	_, ok := f.endpoints[node]
	f.mu.RUnlock()
	return ok
}

// updateRoutes copy-on-writes the route table under routesMu (reads stay
// lock-free).
func (f *Fabric) updateRoutes(fn func(rt *routeTable)) {
	f.routesMu.Lock()
	defer f.routesMu.Unlock()
	cur := f.routes.Load()
	next := &routeTable{remotes: make(map[common.NodeID]Transport)}
	if cur != nil {
		for k, v := range cur.remotes {
			next.remotes[k] = v
		}
		next.def = cur.def
	}
	fn(next)
	if len(next.remotes) == 0 && next.def == nil {
		f.routes.Store(nil) // restore the zero-cost fast path
		return
	}
	f.routes.Store(next)
}

// AttachRemote routes verbs destined for node through t. Attaching over an
// existing route replaces it (peer reconnect).
func (f *Fabric) AttachRemote(node common.NodeID, t Transport) {
	f.updateRoutes(func(rt *routeTable) { rt.remotes[node] = t })
}

// DetachRemote removes node's remote route; verbs fall back to the local
// lookup (and thus ErrNodeDown if no endpoint exists).
func (f *Fabric) DetachRemote(node common.NodeID) {
	f.updateRoutes(func(rt *routeTable) { delete(rt.remotes, node) })
}

// AttachDefault installs t as the route for every node without a local
// endpoint — a satellite process points this at its uplink peer so PMFS and
// all other primaries are reachable without enumerating them.
func (f *Fabric) AttachDefault(t Transport) {
	f.updateRoutes(func(rt *routeTable) { rt.def = t })
}

// LocalTransport returns the fabric's in-process transport — the terminal
// route a verb takes once routing resolves to this process. Interposing
// layers (pmfsrep wraps the PMFS node's route) use it to reach the real
// endpoint without re-entering routing and recursing into themselves.
func (f *Fabric) LocalTransport() Transport { return f.local }

// procTransport is the in-process transport: verbs execute directly against
// endpoints registered in this fabric. It is the transport every fabric
// starts with and the only one single-process deployments ever touch.
type procTransport struct{ f *Fabric }

// Close is a no-op: the in-process transport owns no connections.
func (t *procTransport) Close() error { return nil }

func (t *procTransport) Read(src, node common.NodeID, region string, off int, dst []byte, dup bool, ss *Stats) error {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return err
	}
	r, err := ep.region(region)
	if err != nil {
		return err
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Reads.Inc()
	f.stats.BytesRead.Add(int64(len(dst)))
	if ss != nil {
		ss.Reads.Inc()
		ss.BytesRead.Add(int64(len(dst)))
	}
	if dup {
		// Duplicate delivery: the NIC re-executes the idempotent read.
		f.stats.Reads.Inc()
		if ss != nil {
			ss.Reads.Inc()
		}
		_ = r.read(off, dst)
	}
	return r.read(off, dst)
}

func (t *procTransport) Write(src, node common.NodeID, region string, off int, data []byte, dup bool, ss *Stats) error {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return err
	}
	r, err := ep.region(region)
	if err != nil {
		return err
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Writes.Inc()
	f.stats.BytesWrite.Add(int64(len(data)))
	if ss != nil {
		ss.Writes.Inc()
		ss.BytesWrite.Add(int64(len(data)))
	}
	if dup {
		// Duplicate delivery: writing the same bytes twice is idempotent.
		f.stats.Writes.Inc()
		if ss != nil {
			ss.Writes.Inc()
		}
		_ = r.write(off, data)
	}
	return r.write(off, data)
}

func (t *procTransport) ReadV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return err
	}
	r, err := ep.region(region)
	if err != nil {
		return err
	}
	// Validate the whole chain before executing any element: a bad segment
	// fails the batch atomically.
	for _, s := range segs {
		if err := r.check(s.Off, len(s.Buf)); err != nil {
			return err
		}
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Reads.Inc()
	f.stats.BytesRead.Add(int64(segTotal(segs)))
	if ss != nil {
		ss.Reads.Inc()
		ss.BytesRead.Add(int64(segTotal(segs)))
	}
	for pass := 0; pass < 2; pass++ {
		for _, s := range segs {
			if err := r.read(s.Off, s.Buf); err != nil {
				return err
			}
		}
		if !dup {
			break
		}
		// Duplicate delivery: the NIC re-executes the idempotent chain.
		f.stats.Reads.Inc()
		if ss != nil {
			ss.Reads.Inc()
		}
		dup = false
	}
	return nil
}

func (t *procTransport) WriteV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return err
	}
	r, err := ep.region(region)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := r.check(s.Off, len(s.Buf)); err != nil {
			return err
		}
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Writes.Inc()
	f.stats.BytesWrite.Add(int64(segTotal(segs)))
	if ss != nil {
		ss.Writes.Inc()
		ss.BytesWrite.Add(int64(segTotal(segs)))
	}
	for pass := 0; pass < 2; pass++ {
		for _, s := range segs {
			if err := r.write(s.Off, s.Buf); err != nil {
				return err
			}
		}
		if !dup {
			break
		}
		// Duplicate delivery: writing the same bytes twice is idempotent.
		f.stats.Writes.Inc()
		if ss != nil {
			ss.Writes.Inc()
		}
		dup = false
	}
	return nil
}

func (t *procTransport) CAS64(src, node common.NodeID, region string, off int, old, new uint64, ss *Stats) (uint64, error) {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return 0, err
	}
	r, err := ep.region(region)
	if err != nil {
		return 0, err
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Atomics.Inc()
	if ss != nil {
		ss.Atomics.Inc()
	}
	return r.cas64(off, old, new)
}

func (t *procTransport) FetchAdd64(src, node common.NodeID, region string, off int, delta uint64, ss *Stats) (uint64, error) {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return 0, err
	}
	r, err := ep.region(region)
	if err != nil {
		return 0, err
	}
	f.latency.sleep(f.latency.OneSided)
	f.stats.Atomics.Inc()
	if ss != nil {
		ss.Atomics.Inc()
	}
	return r.fetchAdd64(off, delta)
}

func (t *procTransport) Call(src, node common.NodeID, service string, req []byte, dropReply bool, ss *Stats) ([]byte, error) {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return nil, err
	}
	h, err := ep.service(service)
	if err != nil {
		return nil, err
	}
	f.latency.sleep(f.latency.RPC)
	f.stats.RPCs.Inc()
	if ss != nil {
		ss.RPCs.Inc()
	}
	resp, err := h(req)
	if err != nil {
		return nil, err
	}
	// Re-check liveness: an RPC completed against a node that died
	// mid-call is reported as a network failure, like a torn QP.
	if ep.isDown() {
		return nil, errNodeDiedDuringCall(node)
	}
	if dropReply {
		// The handler ran but the response was lost; the caller sees a
		// transient failure and must retry idempotently.
		return nil, errReplyLost(service, node)
	}
	return resp, nil
}

func (t *procTransport) CallBatch(src, node common.NodeID, service string, reqs [][]byte, dropReply bool, ss *Stats) ([][]byte, error) {
	f := t.f
	ep, err := f.lookup(node)
	if err != nil {
		return nil, err
	}
	h, err := ep.service(service)
	if err != nil {
		return nil, err
	}
	f.latency.sleep(f.latency.RPC)
	f.stats.RPCs.Inc()
	if ss != nil {
		ss.RPCs.Inc()
	}
	resps := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp, err := h(req)
		if err != nil {
			return nil, err
		}
		resps[i] = resp
	}
	if ep.isDown() {
		return nil, errNodeDiedDuringCall(node)
	}
	if dropReply {
		return nil, errReplyLost(service, node)
	}
	return resps, nil
}

var _ Transport = (*procTransport)(nil)

// routes is stored on the Fabric as an atomic pointer; declared here so the
// struct field type is next to its operations.
type routesPtr = atomic.Pointer[routeTable]
