package rdma

import (
	"errors"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestTypedErrors pins the sentinel classification of fabric error paths:
// retry logic depends on errors.Is working across the wrapping.
func TestTypedErrors(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 16)

	if err := f.Read(1, "nope", 0, make([]byte, 4)); !errors.Is(err, common.ErrNoRegion) {
		t.Fatalf("unknown region err = %v", err)
	}
	if _, err := f.Call(1, "nope", nil); !errors.Is(err, common.ErrNoService) {
		t.Fatalf("unknown service err = %v", err)
	}
	if _, err := f.CAS64(1, "mem", 12, 0, 1); !errors.Is(err, common.ErrOutOfBounds) {
		t.Fatalf("cas bounds err = %v", err)
	}
	if _, err := f.FetchAdd64(1, "mem", -8, 1); !errors.Is(err, common.ErrOutOfBounds) {
		t.Fatalf("fetch-add bounds err = %v", err)
	}
	if err := f.Read(2, "mem", 0, make([]byte, 4)); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("unknown node err = %v", err)
	}
	// None of the addressing errors may classify as transient.
	for _, op := range []func() error{
		func() error { return f.Read(1, "nope", 0, make([]byte, 4)) },
		func() error { _, err := f.Call(1, "nope", nil); return err },
		func() error { return f.Read(2, "mem", 0, make([]byte, 4)) },
	} {
		if err := op(); common.IsTransient(err) {
			t.Fatalf("addressing error classified transient: %v", err)
		}
	}
}

// TestDeregisterRacingOps hammers Deregister against in-flight Calls and
// Reads: every op must either succeed or fail with ErrNodeDown — never
// panic, never return a stale success after the final teardown settles.
func TestDeregisterRacingOps(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		f := NewFabric(Latency{})
		ep := f.Register(1)
		ep.RegisterRegion("mem", 64)
		ep.Serve("echo", func(req []byte) ([]byte, error) { return req, nil })

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					if _, err := f.Call(1, "echo", []byte{1}); err != nil && !errors.Is(err, common.ErrNodeDown) {
						t.Errorf("call err = %v", err)
						return
					}
					if err := f.Read(1, "mem", 0, make([]byte, 8)); err != nil && !errors.Is(err, common.ErrNodeDown) {
						t.Errorf("read err = %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ep.Deregister()
		}()
		close(start)
		wg.Wait()

		// After teardown every op fails with ErrNodeDown.
		if err := f.Read(1, "mem", 0, make([]byte, 8)); !errors.Is(err, common.ErrNodeDown) {
			t.Fatalf("post-deregister read err = %v", err)
		}
		if _, err := f.Call(1, "echo", nil); !errors.Is(err, common.ErrNodeDown) {
			t.Fatalf("post-deregister call err = %v", err)
		}
	}
}

// TestDeregisterMidCall verifies an RPC whose handler outlives the endpoint
// is reported as a torn connection, not a success.
func TestDeregisterMidCall(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	ep.Serve("slow", func(req []byte) ([]byte, error) {
		close(entered)
		<-release
		return []byte{42}, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := f.Call(1, "slow", nil)
		done <- err
	}()
	<-entered
	ep.Deregister()
	close(release)
	if err := <-done; !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("mid-call deregister err = %v", err)
	}
}

// TestStatsConcurrent checks Snapshot/Reset coherence under concurrent ops:
// counters only move forward between resets, and a final quiesced snapshot
// exactly matches the ops issued after the last reset.
func TestStatsConcurrent(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 64)
	ep.Serve("echo", func(req []byte) ([]byte, error) { return req, nil })

	const goroutines, opsEach = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshot reader: values must never be negative
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r, w, a, p, _, _ := f.Stats().Snapshot()
			if r < 0 || w < 0 || a < 0 || p < 0 {
				t.Error("negative counter in snapshot")
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < opsEach; i++ {
				_ = f.Read(1, "mem", 0, buf)
				_ = f.Write(1, "mem", 8, buf)
				_, _ = f.FetchAdd64(1, "mem", 16, 1)
				_, _ = f.Call(1, "echo", buf)
			}
		}()
	}
	time.Sleep(time.Millisecond)
	f.Stats().Reset() // reset mid-flight: must not corrupt counters
	wg.Wait()
	close(stop)
	<-readerDone

	f.Stats().Reset()
	const n = 17
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		_ = f.Read(1, "mem", 0, buf)
		_ = f.Write(1, "mem", 8, buf)
		_, _ = f.Call(1, "echo", buf)
	}
	r, w, a, p, _, _ := f.Stats().Snapshot()
	if r != n || w != n || a != 0 || p != n {
		t.Fatalf("quiesced snapshot = (%d,%d,%d,%d), want (%d,%d,0,%d)", r, w, a, p, n, n, n)
	}
}

// TestInjectorDirectives exercises the injector contract: drops fail before
// execution, duplicates re-execute idempotent ops, drop-reply loses the
// response after the handler ran, and uninstalling stops injection.
func TestInjectorDirectives(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 64)
	calls := 0
	ep.Serve("echo", func(req []byte) ([]byte, error) { calls++; return req, nil })

	// Drop: the op fails transient and never lands.
	f.SetInjector(func(op common.FaultOp) common.FaultDecision {
		return common.FaultDecision{Err: common.ErrInjected}
	})
	err := f.Write64(1, "mem", 0, 7)
	if !errors.Is(err, common.ErrInjected) || !common.IsTransient(err) {
		t.Fatalf("dropped write err = %v", err)
	}
	if _, err := f.Call(1, "echo", []byte{1}); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("dropped call err = %v", err)
	}
	if calls != 0 {
		t.Fatalf("dropped call reached handler %d times", calls)
	}

	// Duplicate: one-sided write executes twice (stats see both).
	f.SetInjector(func(op common.FaultOp) common.FaultDecision {
		return common.FaultDecision{Duplicate: op.Class == common.FaultWrite}
	})
	f.Stats().Reset()
	if err := f.Write64(1, "mem", 0, 9); err != nil {
		t.Fatal(err)
	}
	if _, w, _, _, _, _ := f.Stats().Snapshot(); w != 2 {
		t.Fatalf("duplicated write counted %d times", w)
	}
	if v, _ := f.Read64(1, "mem", 0); v != 9 {
		t.Fatalf("value after duplicate write = %d", v)
	}

	// DropReply: handler runs, caller sees a transient loss.
	f.SetInjector(func(op common.FaultOp) common.FaultDecision {
		return common.FaultDecision{DropReply: op.Class == common.FaultRPC}
	})
	calls = 0
	if _, err := f.Call(1, "echo", []byte{1}); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("drop-reply call err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("drop-reply handler ran %d times", calls)
	}

	// Uninstall: back to clean execution.
	f.SetInjector(nil)
	if _, err := f.Call(1, "echo", []byte{1}); err != nil {
		t.Fatalf("post-uninstall call err = %v", err)
	}
}
