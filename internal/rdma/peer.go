package rdma

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// dialTimeout bounds connection establishment and the handshake round trip.
const dialTimeout = 3 * time.Second

// Reconnect pacing is per link slot and exponential: the first redial after
// a failure waits redialBackoffMin, doubling per consecutive failure up to
// redialBackoffMax with ±25% jitter (see faults.go), so a dead uplink costs
// one failed dial per backoff window instead of one per verb, and a fleet
// of clients does not stampede a freshly restarted peer. A successful dial
// resets the slot.

func newPeerID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("rdma: no entropy for peer id: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// PeerConfig tunes DialPeer.
type PeerConfig struct {
	// Name identifies this process in the remote's error messages and
	// stats ("mpserver-2"). Defaults to "peer".
	Name string
	// Conns is the connection-pool size (default 2): verbs are pipelined
	// on every connection and spread round-robin across the pool.
	Conns int
	// Hosted lists node ids this process already hosts; announced in the
	// handshake so the remote can route verbs back. Nodes registered later
	// are announced via Announce.
	Hosted []common.NodeID
	// Counters receives connection/frame accounting (optional).
	Counters *wire.NetCounters
}

func (c *PeerConfig) fill() {
	if c.Name == "" {
		c.Name = "peer"
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
}

// Peer is a dialed connection pool to one remote fabric process,
// implementing Transport. Dead connections redial lazily with backoff; while
// no connection is live, verbs fail with the transient ErrUnreachable so the
// engine's existing retry machinery rides out restarts.
type Peer struct {
	netTransport
	f    *Fabric
	addr string
	id   uint64
	cfg  PeerConfig

	mu       sync.Mutex
	links    []*peerLink // slot-indexed; nil or dead slots redial on demand
	notUntil []time.Time // per-slot redial gate (now+jittered backoff)
	backoff  []time.Duration
	hosted   []common.NodeID
	closed   bool

	rr atomic.Uint32
}

// DialPeer connects f to the fabric process listening at addr. At least one
// connection must hand-shake for the dial to succeed; the rest of the pool
// fills lazily.
func DialPeer(f *Fabric, addr string, cfg PeerConfig) (*Peer, error) {
	cfg.fill()
	p := &Peer{
		f:        f,
		addr:     addr,
		id:       newPeerID(),
		cfg:      cfg,
		links:    make([]*peerLink, cfg.Conns),
		notUntil: make([]time.Time, cfg.Conns),
		backoff:  make([]time.Duration, cfg.Conns),
		hosted:   append([]common.NodeID(nil), cfg.Hosted...),
	}
	p.netTransport = netTransport{links: p, fstats: &f.stats}
	p.mu.Lock()
	l, err := p.dialSlotLocked(0)
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	_ = l
	return p, nil
}

// Addr returns the remote address.
func (p *Peer) Addr() string { return p.addr }

func (p *Peer) detail() string { return p.addr }

// dialSlotLocked (re)connects pool slot i and runs the dialer handshake.
// Failures arm the slot's exponential backoff; success resets it.
func (p *Peer) dialSlotLocked(i int) (*peerLink, error) {
	if p.closed {
		return nil, errPeerUnreachable(p.addr + " (peer closed)")
	}
	if time.Now().Before(p.notUntil[i]) {
		return nil, errPeerUnreachable(p.addr + " (redial backoff)")
	}
	if p.f.faults.denyDial(p.addr) {
		p.armBackoffLocked(i)
		return nil, errPeerUnreachable(p.addr + " (injected partition)")
	}
	p.armBackoffLocked(i)
	c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	if err != nil {
		return nil, errPeerUnreachable(p.addr + ": " + err.Error())
	}
	l := newPeerLink(p.f, c, p.cfg.Counters)
	l.name = p.addr
	if err := p.handshake(l); err != nil {
		_ = c.Close()
		return nil, err
	}
	p.backoff[i] = 0
	p.notUntil[i] = time.Time{}
	p.cfg.Counters.ConnOpened(false)
	p.links[i] = l
	l.start()
	return l, nil
}

// armBackoffLocked advances slot i's backoff and gates the next attempt.
func (p *Peer) armBackoffLocked(i int) {
	p.backoff[i] = nextBackoff(p.backoff[i])
	p.notUntil[i] = time.Now().Add(jittered(p.backoff[i]))
}

// handshake sends hello and validates the ack, all before the read loop
// starts (the connection is private to this goroutine here).
func (p *Peer) handshake(l *peerLink) error {
	hello := wire.AppendU16(nil, FabricProtoVersion)
	hello = wire.AppendU64(hello, p.id)
	hello = wire.AppendString(hello, p.cfg.Name)
	hello = wire.AppendU16(hello, uint16(len(p.hosted)))
	for _, n := range p.hosted {
		hello = wire.AppendU16(hello, uint16(n))
	}
	_ = l.c.SetDeadline(time.Now().Add(dialTimeout))
	defer l.c.SetDeadline(time.Time{})
	if err := l.send(wire.Frame{Kind: wire.KindControl, Op: copHello, Payload: hello}); err != nil {
		return errPeerUnreachable(p.addr + ": hello: " + err.Error())
	}
	fr, _, err := wire.ReadFrame(l.c, nil)
	if err != nil {
		return errPeerUnreachable(p.addr + ": hello ack: " + err.Error())
	}
	if fr.Kind != wire.KindControl || fr.Op != copHelloAck {
		return fmt.Errorf("rdma: peer %s: unexpected handshake frame kind=%d op=%d", p.addr, fr.Kind, fr.Op)
	}
	rd := wire.NewReader(fr.Payload)
	if err := wire.DecodeStatus(rd); err != nil {
		return fmt.Errorf("rdma: peer %s refused handshake: %w", p.addr, err)
	}
	if v := rd.U16(); v != FabricProtoVersion {
		return fmt.Errorf("rdma: peer %s speaks protocol v%d, want v%d", p.addr, v, FabricProtoVersion)
	}
	l.name = p.addr + "/" + rd.Str()
	return rd.Err()
}

// pick returns a live link, redialing one slot if the pool is empty.
func (p *Peer) pick() (*peerLink, error) {
	n := uint32(len(p.links))
	start := p.rr.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for off := uint32(0); off < n; off++ {
		if l := p.links[(start+off)%n]; l != nil && l.alive() {
			return l, nil
		}
	}
	// Nothing live: try to revive the slot round-robin chose.
	return p.dialSlotLocked(int(start % n))
}

// Announce advertises nodes now hosted by this process to the remote, so it
// can route verbs for them back over this peer. Remembered for redials.
func (p *Peer) Announce(nodes ...common.NodeID) error {
	p.mu.Lock()
	p.hosted = append(p.hosted, nodes...)
	links := append([]*peerLink(nil), p.links...)
	p.mu.Unlock()
	payload := wire.AppendU16(nil, uint16(len(nodes)))
	for _, n := range nodes {
		payload = wire.AppendU16(payload, uint16(n))
	}
	sent := false
	for _, l := range links {
		if l == nil || !l.alive() {
			continue
		}
		if err := l.send(wire.Frame{Kind: wire.KindControl, Op: copAnnounce, Payload: payload}); err == nil {
			sent = true
		}
	}
	if !sent {
		return errPeerUnreachable(p.addr + " (announce)")
	}
	return nil
}

// Close tears down the pool; subsequent verbs fail with ErrUnreachable.
func (p *Peer) Close() error {
	p.mu.Lock()
	p.closed = true
	links := append([]*peerLink(nil), p.links...)
	p.mu.Unlock()
	for _, l := range links {
		if l != nil {
			l.fail(errPeerUnreachable(p.addr + " (peer closed)"))
		}
	}
	return nil
}

var _ Transport = (*Peer)(nil)

// remotePeer groups the accepted connections of one dialing process (one
// peer id) and implements Transport for reverse routing to the nodes it
// announced. It never dials: when the dialer reconnects, fresh links join
// the same group.
type remotePeer struct {
	netTransport
	srv  *FabricServer
	id   uint64
	name string

	mu    sync.Mutex
	links []*peerLink
	nodes map[common.NodeID]bool
	rr    atomic.Uint32
}

func (rp *remotePeer) detail() string { return rp.name }

func (rp *remotePeer) pick() (*peerLink, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	n := len(rp.links)
	if n == 0 {
		return nil, errPeerUnreachable(rp.name + " (no live connections)")
	}
	return rp.links[int(rp.rr.Add(1))%n], nil
}

// addNode routes verbs for node through this peer group.
func (rp *remotePeer) addNode(node common.NodeID) {
	rp.mu.Lock()
	known := rp.nodes[node]
	rp.nodes[node] = true
	rp.mu.Unlock()
	if !known {
		rp.srv.f.AttachRemote(node, rp)
	}
}

func (rp *remotePeer) addLink(l *peerLink) {
	rp.mu.Lock()
	rp.links = append(rp.links, l)
	rp.mu.Unlock()
}

func (rp *remotePeer) dropLink(l *peerLink) {
	rp.mu.Lock()
	for i, x := range rp.links {
		if x == l {
			rp.links = append(rp.links[:i], rp.links[i+1:]...)
			break
		}
	}
	rp.mu.Unlock()
}

var _ Transport = (*remotePeer)(nil)

// FabricServer accepts socket-transport peers on behalf of a fabric: it
// serves their verbs against local endpoints and installs reverse routes for
// the nodes each peer hosts.
type FabricServer struct {
	f    *Fabric
	lis  net.Listener
	name string
	nc   *wire.NetCounters

	mu     sync.Mutex
	peers  map[uint64]*remotePeer
	conns  map[*peerLink]struct{}
	closed bool
}

// ServeFabric starts accepting fabric peers on lis. name is this process's
// advertised identity.
func ServeFabric(f *Fabric, lis net.Listener, name string, nc *wire.NetCounters) *FabricServer {
	s := &FabricServer{
		f:     f,
		lis:   lis,
		name:  name,
		nc:    nc,
		peers: make(map[uint64]*remotePeer),
		conns: make(map[*peerLink]struct{}),
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *FabricServer) Addr() string { return s.lis.Addr().String() }

func (s *FabricServer) acceptLoop() {
	for {
		c, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handshake(c)
	}
}

// handshake validates a dialer's hello, joins the link to its peer group and
// starts serving it.
func (s *FabricServer) handshake(c net.Conn) {
	l := newPeerLink(s.f, c, s.nc)
	_ = c.SetDeadline(time.Now().Add(dialTimeout))
	fr, _, err := wire.ReadFrame(c, nil)
	if err != nil || fr.Kind != wire.KindControl || fr.Op != copHello {
		_ = c.Close()
		return
	}
	rd := wire.NewReader(fr.Payload)
	version := rd.U16()
	peerID := rd.U64()
	peerName := rd.Str()
	k := int(rd.U16())
	nodes := make([]common.NodeID, 0, k)
	for i := 0; i < k; i++ {
		nodes = append(nodes, common.NodeID(rd.U16()))
	}
	if rd.Err() != nil {
		s.nc.CodecError()
		_ = c.Close()
		return
	}
	var hsErr error
	if version != FabricProtoVersion {
		hsErr = fmt.Errorf("wire: protocol v%d not supported, want v%d: %w",
			version, FabricProtoVersion, common.ErrCorrupt)
	}
	ack := wire.AppendStatus(nil, hsErr)
	ack = wire.AppendU16(ack, FabricProtoVersion)
	ack = wire.AppendString(ack, s.name)
	if err := l.send(wire.Frame{Kind: wire.KindControl, Op: copHelloAck, Payload: ack}); err != nil || hsErr != nil {
		_ = c.Close()
		return
	}
	_ = c.SetDeadline(time.Time{})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = c.Close()
		return
	}
	rp := s.peers[peerID]
	if rp == nil {
		rp = &remotePeer{srv: s, id: peerID, name: peerName, nodes: make(map[common.NodeID]bool)}
		rp.netTransport = netTransport{links: rp, fstats: &s.f.stats}
		s.peers[peerID] = rp
	}
	s.conns[l] = struct{}{}
	s.mu.Unlock()

	l.name = peerName
	l.rp = rp
	l.onClose = func(dead *peerLink) {
		rp.dropLink(dead)
		s.mu.Lock()
		delete(s.conns, dead)
		s.mu.Unlock()
	}
	rp.addLink(l)
	for _, n := range nodes {
		rp.addNode(n)
	}
	s.nc.ConnOpened(true)
	l.start()
}

// Close stops accepting and tears down every peer connection. Routes the
// peers installed are detached so local lookups fail fast again.
func (s *FabricServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*peerLink, 0, len(s.conns))
	for l := range s.conns {
		conns = append(conns, l)
	}
	peers := s.peers
	s.peers = make(map[uint64]*remotePeer)
	s.mu.Unlock()
	_ = s.lis.Close()
	for _, l := range conns {
		l.fail(errPeerUnreachable("server closed"))
	}
	for _, rp := range peers {
		rp.mu.Lock()
		nodes := make([]common.NodeID, 0, len(rp.nodes))
		for n := range rp.nodes {
			nodes = append(nodes, n)
		}
		rp.mu.Unlock()
		for _, n := range nodes {
			s.f.DetachRemote(n)
		}
	}
}
