// Package metrics provides the low-overhead counters, latency histograms and
// throughput timelines used by the benchmark harnesses to regenerate the
// paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Histogram is a concurrency-safe latency histogram with logarithmic buckets
// (~7% relative error), good enough for P50/P95/P99 figure reproduction.
type Histogram struct {
	mu      sync.Mutex
	buckets [nBuckets]int64
	count   int64
	sum     int64 // nanoseconds
	max     int64
}

const (
	nBuckets = 256
	// bucketBase: bucket i covers [base^i, base^(i+1)) ns.
	bucketBase = 1.1
)

func bucketFor(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	i := int(math.Log(float64(ns)) / math.Log(bucketBase))
	if i >= nBuckets {
		i = nBuckets - 1
	}
	return i
}

func bucketLow(i int) int64 { return int64(math.Pow(bucketBase, float64(i))) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := bucketFor(ns)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the q-quantile (0 < q <= 1) of the observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		return time.Duration(h.max)
	}
	var seen int64
	for i := 0; i < nBuckets; i++ {
		seen += h.buckets[i]
		if seen > target {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	*h = Histogram{}
	h.mu.Unlock()
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	b := other.buckets
	c, s, m := other.count, other.sum, other.max
	other.mu.Unlock()
	h.mu.Lock()
	for i := range b {
		h.buckets[i] += b[i]
	}
	h.count += c
	h.sum += s
	if m > h.max {
		h.max = m
	}
	h.mu.Unlock()
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}

// Timeline records per-interval event counts so harnesses can plot
// throughput over time (Figures 10 and 15).
type Timeline struct {
	start    time.Time
	interval time.Duration
	mu       sync.Mutex
	buckets  []int64
}

// NewTimeline starts a timeline with the given bucketing interval.
func NewTimeline(interval time.Duration) *Timeline {
	return &Timeline{start: time.Now(), interval: interval}
}

// Tick records n events at the current time.
func (t *Timeline) Tick(n int64) {
	i := int(time.Since(t.start) / t.interval)
	t.mu.Lock()
	for len(t.buckets) <= i {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[i] += n
	t.mu.Unlock()
}

// Interval returns the bucketing interval.
func (t *Timeline) Interval() time.Duration { return t.interval }

// Series returns a copy of the per-interval counts.
func (t *Timeline) Series() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.buckets))
	copy(out, t.buckets)
	return out
}

// Rates returns per-interval event rates in events/second.
func (t *Timeline) Rates() []float64 {
	s := t.Series()
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = float64(v) / t.interval.Seconds()
	}
	return out
}

// Summary aggregates a harness run: throughput plus latency percentiles.
type Summary struct {
	Name       string
	Ops        int64
	Errors     int64
	Aborts     int64
	Elapsed    time.Duration
	Latency    *Histogram
	ExtraNotes string
}

// TPS returns operations per second.
func (s Summary) TPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

func (s Summary) String() string {
	lat := ""
	if s.Latency != nil && s.Latency.Count() > 0 {
		lat = " " + s.Latency.String()
	}
	return fmt.Sprintf("%s: %.0f tps (%d ops, %d aborts, %d errors, %v)%s",
		s.Name, s.TPS(), s.Ops, s.Aborts, s.Errors, s.Elapsed.Round(time.Millisecond), lat)
}

// SortedKeys returns the keys of m in sorted order (small harness helper).
func SortedKeys[K interface {
	~int | ~int64 | ~uint64 | ~string | ~float64
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
