package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 350*time.Microsecond || p50 > 700*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 800*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	if h.Quantile(1.0) < p99 {
		t.Fatal("max below p99")
	}
	mean := h.Mean()
	if mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Fatalf("mean = %v, want ~500µs", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Quantile(1.0) < 2*time.Millisecond {
		t.Fatalf("merged max = %v", a.Quantile(1.0))
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	tl.Tick(5)
	time.Sleep(25 * time.Millisecond)
	tl.Tick(3)
	s := tl.Series()
	if len(s) < 3 {
		t.Fatalf("series len = %d, want >= 3", len(s))
	}
	if s[0] != 5 {
		t.Fatalf("bucket 0 = %d, want 5", s[0])
	}
	var total int64
	for _, v := range s {
		total += v
	}
	if total != 8 {
		t.Fatalf("total = %d, want 8", total)
	}
	rates := tl.Rates()
	if rates[0] != 500 {
		t.Fatalf("rate 0 = %f, want 500/s", rates[0])
	}
}

func TestSummaryTPS(t *testing.T) {
	s := Summary{Name: "x", Ops: 1000, Elapsed: 2 * time.Second}
	if s.TPS() != 500 {
		t.Fatalf("tps = %f", s.TPS())
	}
	if (Summary{}).TPS() != 0 {
		t.Fatal("zero-elapsed TPS should be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}
