package membership

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

func newTestTable(t *testing.T) (*rdma.Fabric, *Table) {
	t.Helper()
	fab := rdma.NewFabric(rdma.Latency{})
	return fab, NewTable(fab.Register(common.PMFSNode))
}

func TestJoinEvictLifecycle(t *testing.T) {
	_, tbl := newTestTable(t)

	e1, _, err := tbl.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	e2, hb2, err := tbl.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("epochs not monotonic: %d then %d", e1, e2)
	}
	if tbl.State(1) != StateLive || tbl.State(2) != StateLive {
		t.Fatalf("states = %s/%s, want live/live",
			StateName(tbl.State(1)), StateName(tbl.State(2)))
	}

	// A stale heartbeat observation is a false suspicion: the suspect
	// renewed past it, so the eviction must be refused.
	if won, _ := tbl.Evict(1, 2, hb2-1, tbl.CurrentEpoch()); won {
		t.Fatal("eviction won with a stale heartbeat observation")
	}
	if tbl.FalseSuspicions.Load() != 1 {
		t.Fatalf("FalseSuspicions = %d, want 1", tbl.FalseSuspicions.Load())
	}

	// An eviction from an outdated epoch view is a lost race, not a false
	// suspicion.
	if won, _ := tbl.Evict(1, 2, hb2, tbl.CurrentEpoch()-1); won {
		t.Fatal("eviction won from a stale epoch view")
	}
	if tbl.FalseSuspicions.Load() != 1 {
		t.Fatalf("FalseSuspicions = %d after lost race, want 1", tbl.FalseSuspicions.Load())
	}

	// The accurate observation wins, bumps the epoch, and fences the slot.
	before := tbl.CurrentEpoch()
	won, after := tbl.Evict(1, 2, hb2, before)
	if !won || after != before+1 {
		t.Fatalf("evict = (%v, %d), want (true, %d)", won, after, before+1)
	}
	if tbl.State(2) != StateFenced {
		t.Fatalf("state = %s, want fenced", StateName(tbl.State(2)))
	}
	if tbl.EpochBumps.Load() != 1 {
		t.Fatalf("EpochBumps = %d, want 1", tbl.EpochBumps.Load())
	}

	// Only one reporter wins; the loser sees the slot already fenced.
	if won, _ := tbl.Evict(1, 2, hb2, after); won {
		t.Fatal("second eviction of a fenced slot won")
	}

	// Fenced slots refuse Join until the takeover finishes.
	if _, _, err := tbl.Join(2); !errors.Is(err, common.ErrFenced) {
		t.Fatalf("join while fenced = %v, want ErrFenced", err)
	}
	tbl.MarkRecovered(2)
	if !tbl.Recovered(2) {
		t.Fatal("Recovered(2) = false after MarkRecovered")
	}
	e2b, _, err := tbl.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if e2b <= after {
		t.Fatalf("rejoin epoch %d not past eviction epoch %d", e2b, after)
	}
	if tbl.Recovered(2) {
		t.Fatal("Recovered(2) still true after rejoin")
	}
}

func TestGateFencesStaleIncarnations(t *testing.T) {
	_, tbl := newTestTable(t)
	gate := tbl.Gate()

	e, hb, err := tbl.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate(1, e); err != nil {
		t.Fatalf("gate rejected the live incarnation: %v", err)
	}
	// Epoch 0 marks system-internal requests and always passes.
	if err := gate(1, 0); err != nil {
		t.Fatalf("gate rejected epoch 0: %v", err)
	}
	if err := gate(1, e+1); !errors.Is(err, common.ErrStaleEpoch) {
		t.Fatalf("gate(wrong epoch) = %v, want ErrStaleEpoch", err)
	}
	if err := gate(2, e); !errors.Is(err, common.ErrStaleEpoch) {
		t.Fatalf("gate(never joined) = %v, want ErrStaleEpoch", err)
	}

	if won, _ := tbl.Evict(2, 1, hb, tbl.CurrentEpoch()); !won {
		t.Fatal("eviction lost")
	}
	if err := gate(1, e); !errors.Is(err, common.ErrStaleEpoch) {
		t.Fatalf("gate(fenced incarnation) = %v, want ErrStaleEpoch", err)
	}
}

func TestResetKeepsEpochMonotonic(t *testing.T) {
	_, tbl := newTestTable(t)
	tbl.Join(1)
	e2, _, _ := tbl.Join(2)
	tbl.Reset()
	if tbl.State(1) != StateFree || tbl.State(2) != StateFree {
		t.Fatal("Reset left non-free slots")
	}
	e1b, _, err := tbl.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if e1b <= e2 {
		t.Fatalf("epoch %d after reset not past pre-reset epoch %d", e1b, e2)
	}
}

// TestAgentDetectsSilentPeer runs two live agents against a table and fail
// stops one by halting its heartbeats: the survivor must suspect it within
// the lease timeout, win the eviction, and fire the takeover callback; the
// dead agent's own lease check must then report the stale epoch.
func TestAgentDetectsSilentPeer(t *testing.T) {
	fab, tbl := newTestTable(t)
	cfg := Config{RenewInterval: 2 * time.Millisecond, LeaseTimeout: 20 * time.Millisecond}

	a1 := NewAgent(1, common.PMFSNode, fab, nil, cfg)
	a2 := NewAgent(2, common.PMFSNode, fab, nil, cfg)
	var dead atomic.Uint64
	a1.SetOnTakeover(func(n common.NodeID, _ common.Epoch) { dead.Store(uint64(n)) })
	for _, a := range []*Agent{a1, a2} {
		if err := a.Join(); err != nil {
			t.Fatal(err)
		}
		a.Start()
	}
	defer a1.Stop()

	// Let both leases establish, then silence agent 2.
	time.Sleep(4 * cfg.RenewInterval)
	a2.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for dead.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dead.Load() != 2 {
		t.Fatalf("survivor never evicted the silent peer (state=%s)",
			StateName(tbl.State(2)))
	}
	if tbl.State(2) != StateFenced {
		t.Fatalf("state = %s, want fenced", StateName(tbl.State(2)))
	}
	if a1.Suspicions.Load() == 0 {
		t.Fatal("survivor won an eviction without recording a suspicion")
	}
	// The zombie's pre-commit self-check observes its own eviction.
	if err := a2.CheckValid(); !errors.Is(err, common.ErrStaleEpoch) {
		t.Fatalf("evicted agent CheckValid = %v, want ErrStaleEpoch", err)
	}
	if !a2.Evicted() {
		t.Fatal("CheckValid did not latch the evicted flag")
	}
}

// TestAgentFailSlowSuspicion models a gray failure: agent 2 keeps renewing
// (its lease never lapses) but every heartbeat write stalls well past the
// renewal cadence. The survivor must raise a fail-slow suspicion — without
// ever attempting an eviction — and clear it once the peer speeds back up.
func TestAgentFailSlowSuspicion(t *testing.T) {
	fab, tbl := newTestTable(t)
	cfg := Config{RenewInterval: 3 * time.Millisecond, LeaseTimeout: 300 * time.Millisecond}

	a1 := NewAgent(1, common.PMFSNode, fab, nil, cfg)
	a2 := NewAgent(2, common.PMFSNode, fab, nil, cfg)
	for _, a := range []*Agent{a1, a2} {
		if err := a.Join(); err != nil {
			t.Fatal(err)
		}
		a.Start()
		defer a.Stop()
	}

	// Stall only node 2's heartbeat writes: ~4x the renewal cadence, far
	// below the lease timeout.
	fab.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultWrite && op.Src == 2 && op.Name == Region {
			return common.FaultDecision{Delay: 4 * cfg.RenewInterval}
		}
		return common.FaultDecision{}
	})

	deadline := time.Now().Add(5 * time.Second)
	for a1.FailSlowSuspicions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a1.FailSlowSuspicions.Load() == 0 {
		t.Fatal("survivor never suspected the fail-slow peer")
	}
	if got := a1.SlowPeers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SlowPeers = %v, want [2]", got)
	}
	// Fail-slow is advisory: the peer kept its lease the whole time.
	if tbl.State(2) != StateLive {
		t.Fatalf("fail-slow peer state = %s, want live", StateName(tbl.State(2)))
	}
	if tbl.EpochBumps.Load() != 0 {
		t.Fatal("fail-slow suspicion must not evict")
	}

	// Peer recovers; the gap EWMA decays and the mark clears.
	fab.SetInjector(nil)
	for len(a1.SlowPeers()) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := a1.SlowPeers(); len(got) != 0 {
		t.Fatalf("SlowPeers = %v after recovery, want empty", got)
	}
}

// TestDrainLifecycle walks a slot through the graceful-drain state machine
// and checks the epoch, gate, and reuse semantics at each step.
func TestDrainLifecycle(t *testing.T) {
	_, tbl := newTestTable(t)

	id, err := tbl.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first alloc = %d, want 1", id)
	}
	if tbl.State(id) != StateJoining {
		t.Fatalf("state after alloc = %s, want joining", StateName(tbl.State(id)))
	}
	inc, _, err := tbl.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	gate := tbl.Gate()

	// Live -> Draining bumps the epoch; the gate still admits the
	// incarnation (in-flight commits must finish during a drain).
	e0 := tbl.CurrentEpoch()
	e1, err := tbl.Drain(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 <= e0 {
		t.Fatalf("drain epoch %d did not pass %d", e1, e0)
	}
	if tbl.State(id) != StateDraining {
		t.Fatalf("state = %s, want draining", StateName(tbl.State(id)))
	}
	if err := gate(id, inc); err != nil {
		t.Fatalf("gate refused a draining incarnation: %v", err)
	}
	// Idempotent: a retried drain neither fails nor bumps again.
	if e1b, err := tbl.Drain(id); err != nil || e1b != e1 {
		t.Fatalf("retried drain = (%d, %v), want (%d, nil)", e1b, err, e1)
	}
	// A drained slot refuses rejoin mid-drain.
	if _, _, err := tbl.Join(id); !errors.Is(err, common.ErrDraining) {
		t.Fatalf("join mid-drain: %v, want ErrDraining", err)
	}

	// Draining -> Drained closes the gate and frees the slot for reuse.
	e2, err := tbl.Drained(id)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("drained epoch %d did not pass %d", e2, e1)
	}
	if err := gate(id, inc); err == nil {
		t.Fatal("gate admitted a drained incarnation")
	}
	if !tbl.Recovered(id) {
		t.Fatal("a drained node must resolve as recovered (fate rule)")
	}
	// Alloc reuses the lowest drained slot.
	id2, err := tbl.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("alloc after drain = %d, want reuse of %d", id2, id)
	}
}

// TestAllocSkipsCrashedSlots: a fenced or down slot belongs to recovery (a
// restart of the same identity may claim it); Alloc must never hand it out.
func TestAllocSkipsCrashedSlots(t *testing.T) {
	_, tbl := newTestTable(t)
	_, hb, err := tbl.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.Join(2); err != nil {
		t.Fatal(err)
	}
	if won, _ := tbl.Evict(2, 1, hb, tbl.CurrentEpoch()); !won {
		t.Fatal("eviction refused")
	}
	if tbl.State(1) != StateFenced {
		t.Fatalf("state = %s, want fenced", StateName(tbl.State(1)))
	}
	id, err := tbl.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == 1 {
		t.Fatal("alloc handed out a fenced slot")
	}
	// Post-recovery the slot is Down: still not allocatable, but freeable.
	tbl.MarkRecovered(1)
	if id, _ := tbl.Alloc(); id == 1 {
		t.Fatal("alloc handed out a down slot")
	}
	if err := tbl.Free(1); err != nil {
		t.Fatal(err)
	}
	if tbl.State(1) != StateFree {
		t.Fatalf("state after free = %s, want free", StateName(tbl.State(1)))
	}
}

// TestBoundsUnifyOnErrUnknownNode: every Table entry point classifies an
// out-of-range node id with the one shared sentinel.
func TestBoundsUnifyOnErrUnknownNode(t *testing.T) {
	_, tbl := newTestTable(t)
	for _, bad := range []common.NodeID{0, MaxNodes + 1} {
		if _, _, err := tbl.Join(bad); !errors.Is(err, common.ErrUnknownNode) {
			t.Fatalf("Join(%d): %v, want ErrUnknownNode", bad, err)
		}
		if _, err := tbl.Drain(bad); !errors.Is(err, common.ErrUnknownNode) {
			t.Fatalf("Drain(%d): %v, want ErrUnknownNode", bad, err)
		}
		if _, err := tbl.Drained(bad); !errors.Is(err, common.ErrUnknownNode) {
			t.Fatalf("Drained(%d): %v, want ErrUnknownNode", bad, err)
		}
		if err := tbl.Free(bad); !errors.Is(err, common.ErrUnknownNode) {
			t.Fatalf("Free(%d): %v, want ErrUnknownNode", bad, err)
		}
		if tbl.State(bad) != StateFree || tbl.Recovered(bad) {
			t.Fatalf("State/Recovered(%d) leaked past the bounds check", bad)
		}
	}
}

// TestAllocFullTable: slot exhaustion is the same "no such node" class the
// callers already handle, not a new failure mode.
func TestAllocFullTable(t *testing.T) {
	_, tbl := newTestTable(t)
	for i := 0; i < MaxNodes; i++ {
		if _, err := tbl.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Alloc(); !errors.Is(err, common.ErrUnknownNode) {
		t.Fatalf("alloc on full table: %v, want ErrUnknownNode", err)
	}
}
