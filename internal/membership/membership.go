// Package membership implements lease-based failure detection with
// monotonically increasing cluster epochs (the self-healing layer the
// paper's recovery story assumes but leaves to the surrounding system).
//
// PMFS hosts a membership table in a fabric-registered memory region: a
// cluster epoch word plus one slot per node {incarnation epoch, heartbeat
// sequence, state}. Every node runs an Agent that
//
//   - renews its lease by bumping its heartbeat word with a one-sided RDMA
//     write (cheap, no server CPU), and
//   - watches every peer's heartbeat with one-sided reads; a heartbeat that
//     stands still longer than the lease timeout makes the peer a suspect.
//
// A survivor evicts a suspect through the membership service: the table
// re-checks the heartbeat (a renewal that raced the suspicion refuses the
// eviction — a false suspicion, counted), bumps the cluster epoch, and
// fences the suspect. Exactly one reporter wins; the winner drives takeover.
// A fenced node's slot refuses Join until takeover completes, after which
// the node may rejoin with a fresh incarnation epoch.
//
// The incarnation epoch is the fencing token: nodes stamp it on every
// fusion-service request, and the Gate rejects stamps that no longer name a
// live incarnation with common.ErrStaleEpoch, so an evicted-but-still-
// running zombie cannot mutate shared state after the survivors moved on.
package membership

import (
	"encoding/binary"
	"fmt"
	"sync"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
)

const (
	// Region is the PMFS memory region holding the membership table.
	Region = "pmfs.members"
	// Service is the PMFS RPC service for join/evict (the two transitions
	// that must serialize against each other; renewals stay one-sided).
	Service = "membership"

	// MaxNodes bounds the table (node IDs 1..MaxNodes).
	MaxNodes = 256

	hdrSize  = 8 // cluster epoch
	slotSize = 24
	offEpoch = 0 // slot-relative: incarnation epoch
	offHB    = 8 // slot-relative: heartbeat sequence
	offState = 16
)

// RegionSize is the byte size of the membership region.
const RegionSize = hdrSize + MaxNodes*slotSize

// SlotOff returns the region offset of node's slot.
func SlotOff(node common.NodeID) int { return hdrSize + (int(node)-1)*slotSize }

// HBOff returns the region offset of node's heartbeat word (the word an
// Agent renews with one-sided writes).
func HBOff(node common.NodeID) int { return SlotOff(node) + offHB }

// Node lifecycle states stored in a slot's state word.
const (
	StateFree   uint64 = iota // slot never used (or cluster reset)
	StateLive                 // holding a lease
	StateFenced               // evicted; takeover in progress
	StateDown                 // takeover complete; may rejoin
)

// StateName returns a state word's human-readable name.
func StateName(s uint64) string {
	switch s {
	case StateFree:
		return "free"
	case StateLive:
		return "live"
	case StateFenced:
		return "fenced"
	case StateDown:
		return "down"
	}
	return "?"
}

// Membership service ops.
const (
	opJoin  = 1 // [op u8][node u16] -> [epoch u64][hb u64]
	opEvict = 2 // [op u8][reporter u16][suspect u16][observedHB u64][fromEpoch u64] -> [won u8][epoch u64]
)

// Table is the PMFS-side membership state. The fabric region is the
// observable truth for heartbeats (agents write them directly); the Table
// serializes state and epoch transitions and mirrors them into the region
// so detectors can watch everything with a single one-sided read.
type Table struct {
	reg *rdma.Region

	mu    sync.Mutex
	epoch common.Epoch
	state [MaxNodes + 1]uint64
	inc   [MaxNodes + 1]common.Epoch

	// EpochBumps counts evictions won (each bumps the cluster epoch).
	EpochBumps metrics.Counter
	// FalseSuspicions counts evictions refused because the suspect's
	// heartbeat advanced past the reporter's observation.
	FalseSuspicions metrics.Counter
}

// NewTable registers the membership region and service on the PMFS endpoint.
func NewTable(ep *rdma.Endpoint) *Table {
	t := &Table{reg: ep.RegisterRegion(Region, RegionSize)}
	ep.Serve(Service, t.handle)
	return t
}

func (t *Table) handle(req []byte) ([]byte, error) {
	if len(req) < 1 {
		return nil, common.ErrShortBuffer
	}
	switch req[0] {
	case opJoin:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		epoch, hb, err := t.Join(node)
		if err != nil {
			return nil, err
		}
		resp := make([]byte, 16)
		binary.LittleEndian.PutUint64(resp[0:8], uint64(epoch))
		binary.LittleEndian.PutUint64(resp[8:16], hb)
		return resp, nil
	case opEvict:
		if len(req) < 21 {
			return nil, common.ErrShortBuffer
		}
		reporter := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		suspect := common.NodeID(binary.LittleEndian.Uint16(req[3:5]))
		hb := binary.LittleEndian.Uint64(req[5:13])
		from := common.Epoch(binary.LittleEndian.Uint64(req[13:21]))
		won, epoch := t.Evict(reporter, suspect, hb, from)
		resp := make([]byte, 9)
		if won {
			resp[0] = 1
		}
		binary.LittleEndian.PutUint64(resp[1:9], uint64(epoch))
		return resp, nil
	}
	return nil, fmt.Errorf("membership: op %d: %w", req[0], common.ErrNoService)
}

// Join admits node (fresh or restarting) under a new incarnation epoch and
// returns the epoch plus the node's current heartbeat sequence. Joining is
// refused while the slot is fenced: a survivor is still replaying the
// previous incarnation's state, and two incarnations must never overlap.
func (t *Table) Join(node common.NodeID) (common.Epoch, uint64, error) {
	if node < 1 || node > MaxNodes {
		return 0, 0, fmt.Errorf("membership: join node %d: out of range", node)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] == StateFenced {
		return 0, 0, fmt.Errorf("membership: node %d: takeover in progress: %w", node, common.ErrFenced)
	}
	t.epoch++
	hb, _ := t.reg.LocalRead64(HBOff(node))
	hb++ // a join is itself proof of life; stale evictions must lose
	t.state[node] = StateLive
	t.inc[node] = t.epoch
	t.writeLocked(node, hb)
	return t.epoch, hb, nil
}

// Evict fences suspect on reporter's behalf. It wins only if the cluster
// epoch still matches the reporter's view and the suspect's heartbeat has
// not advanced past the reporter's observation; exactly one concurrent
// reporter can win. The winner receives the new cluster epoch and owns the
// takeover.
func (t *Table) Evict(reporter, suspect common.NodeID, observedHB uint64, from common.Epoch) (bool, common.Epoch) {
	if suspect < 1 || suspect > MaxNodes || reporter == suspect {
		return false, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[suspect] != StateLive || t.epoch != from {
		// Already fenced/down (someone else won) or the membership moved
		// under the reporter; not a false suspicion, just a lost race.
		return false, t.epoch
	}
	hb, _ := t.reg.LocalRead64(HBOff(suspect))
	if hb != observedHB {
		t.FalseSuspicions.Inc()
		return false, t.epoch
	}
	t.epoch++
	t.state[suspect] = StateFenced
	t.EpochBumps.Inc()
	t.writeLocked(suspect, hb)
	return true, t.epoch
}

// MarkRecovered moves a fenced node to Down: takeover finished, the node's
// durable effects are resolved, and a restart may rejoin.
func (t *Table) MarkRecovered(node common.NodeID) {
	if node < 1 || node > MaxNodes {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] != StateFenced {
		return
	}
	t.state[node] = StateDown
	hb, _ := t.reg.LocalRead64(HBOff(node))
	t.writeLocked(node, hb)
}

// Recovered reports whether node crashed and its takeover completed — the
// signal that lets readers resolve the node's unstamped-but-committed
// versions as visible (CSNMin) instead of treating them as active.
func (t *Table) Recovered(node common.NodeID) bool {
	if node < 1 || node > MaxNodes {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state[node] == StateDown
}

// State returns node's current lifecycle state word.
func (t *Table) State(node common.NodeID) uint64 {
	if node < 1 || node > MaxNodes {
		return StateFree
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state[node]
}

// CurrentEpoch returns the cluster epoch.
func (t *Table) CurrentEpoch() common.Epoch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Reset clears every slot (full-cluster crash). The cluster epoch is
// retained so it stays monotonic across the restart.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree {
			continue
		}
		t.state[n] = StateFree
		t.inc[n] = 0
		t.writeLocked(n, 0)
	}
}

// Gate returns the epoch gate fusion servers consult: a stamped request is
// admitted only while its (node, incarnation epoch) names the live
// incarnation. Epoch 0 marks system-internal or pre-membership requests
// and always passes.
func (t *Table) Gate() common.EpochGate {
	return func(node common.NodeID, e common.Epoch) error {
		if e == 0 {
			return nil
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if node >= 1 && node <= MaxNodes && t.state[node] == StateLive && t.inc[node] == e {
			return nil
		}
		return fmt.Errorf("membership: node %d epoch %d fenced: %w", node, e, common.ErrStaleEpoch)
	}
}

// Remirror republishes the table's serialized state — cluster epoch,
// per-slot incarnation epochs and lifecycle states — into the fabric region.
// Heartbeat words are left alone: agents own them through replicated
// one-sided writes. The pmfs replication tier calls this after a replica
// failover, because Join/Evict mutate Go state and mirror it with local
// writes, which bypass the replicated fabric path; a promoted replica's
// region must be re-seeded from what the Table actually serialized.
func (t *Table) Remirror() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.reg.LocalWrite64(0, uint64(t.epoch))
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree && t.inc[n] == 0 {
			continue
		}
		off := SlotOff(n)
		_ = t.reg.LocalWrite64(off+offEpoch, uint64(t.inc[n]))
		_ = t.reg.LocalWrite64(off+offState, t.state[n])
	}
}

// writeLocked mirrors node's slot (and the cluster epoch) into the region.
func (t *Table) writeLocked(node common.NodeID, hb uint64) {
	_ = t.reg.LocalWrite64(0, uint64(t.epoch))
	off := SlotOff(node)
	_ = t.reg.LocalWrite64(off+offEpoch, uint64(t.inc[node]))
	_ = t.reg.LocalWrite64(off+offHB, hb)
	_ = t.reg.LocalWrite64(off+offState, t.state[node])
}
