// Package membership implements lease-based failure detection with
// monotonically increasing cluster epochs (the self-healing layer the
// paper's recovery story assumes but leaves to the surrounding system).
//
// PMFS hosts a membership table in a fabric-registered memory region: a
// cluster epoch word plus one slot per node {incarnation epoch, heartbeat
// sequence, state}. Every node runs an Agent that
//
//   - renews its lease by bumping its heartbeat word with a one-sided RDMA
//     write (cheap, no server CPU), and
//   - watches every peer's heartbeat with one-sided reads; a heartbeat that
//     stands still longer than the lease timeout makes the peer a suspect.
//
// A survivor evicts a suspect through the membership service: the table
// re-checks the heartbeat (a renewal that raced the suspicion refuses the
// eviction — a false suspicion, counted), bumps the cluster epoch, and
// fences the suspect. Exactly one reporter wins; the winner drives takeover.
// A fenced node's slot refuses Join until takeover completes, after which
// the node may rejoin with a fresh incarnation epoch.
//
// The incarnation epoch is the fencing token: nodes stamp it on every
// fusion-service request, and the Gate rejects stamps that no longer name a
// live incarnation with common.ErrStaleEpoch, so an evicted-but-still-
// running zombie cannot mutate shared state after the survivors moved on.
package membership

import (
	"encoding/binary"
	"fmt"
	"sync"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
)

const (
	// Region is the PMFS memory region holding the membership table.
	Region = "pmfs.members"
	// Service is the PMFS RPC service for join/evict (the two transitions
	// that must serialize against each other; renewals stay one-sided).
	Service = "membership"

	// MaxNodes bounds the table (node IDs 1..MaxNodes).
	MaxNodes = 256

	hdrSize  = 8 // cluster epoch
	slotSize = 24
	offEpoch = 0 // slot-relative: incarnation epoch
	offHB    = 8 // slot-relative: heartbeat sequence
	offState = 16
)

// RegionSize is the byte size of the membership region.
const RegionSize = hdrSize + MaxNodes*slotSize

// SlotOff returns the region offset of node's slot.
func SlotOff(node common.NodeID) int { return hdrSize + (int(node)-1)*slotSize }

// HBOff returns the region offset of node's heartbeat word (the word an
// Agent renews with one-sided writes).
func HBOff(node common.NodeID) int { return SlotOff(node) + offHB }

// Node lifecycle states stored in a slot's state word. Values are part of
// the region layout: append only, never renumber.
const (
	StateFree     uint64 = iota // slot never used (or released)
	StateLive                   // holding a lease
	StateFenced                 // evicted; takeover in progress
	StateDown                   // takeover complete; may rejoin
	StateDraining               // graceful drain in progress; lease still valid
	StateDrained                // drain complete; slot reusable
	StateJoining                // slot reserved by Alloc; Join pending
)

// StateName returns a state word's human-readable name.
func StateName(s uint64) string {
	switch s {
	case StateFree:
		return "free"
	case StateLive:
		return "live"
	case StateFenced:
		return "fenced"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	case StateJoining:
		return "joining"
	}
	return "?"
}

// ErrUnknownNode is the typed bounds error: the node id is outside 1..MaxNodes,
// or (from Alloc) the table has no reusable slot left. It aliases the shared
// sentinel so errors.Is matches across packages and across the wire.
var ErrUnknownNode = common.ErrUnknownNode

// CheckNode is the one bounds rule for the table: node ids run 1..MaxNodes.
// Every Table and RemoteView path funnels through it so out-of-range ids are
// answered uniformly with the typed ErrUnknownNode (historically one path
// built an ad-hoc error and the boolean paths failed silently).
func CheckNode(node common.NodeID) error {
	if node < 1 || node > MaxNodes {
		return fmt.Errorf("membership: node %d: %w", node, ErrUnknownNode)
	}
	return nil
}

// Membership service ops.
const (
	opJoin    = 1 // [op u8][node u16] -> [epoch u64][hb u64]
	opEvict   = 2 // [op u8][reporter u16][suspect u16][observedHB u64][fromEpoch u64] -> [won u8][epoch u64]
	opDrain   = 3 // [op u8][node u16] -> [epoch u64]
	opDrained = 4 // [op u8][node u16] -> [epoch u64]
	opAlloc   = 5 // [op u8] -> [node u16]
	opFree    = 6 // [op u8][node u16] -> []
)

// Table is the PMFS-side membership state. The fabric region is the
// observable truth for heartbeats (agents write them directly); the Table
// serializes state and epoch transitions and mirrors them into the region
// so detectors can watch everything with a single one-sided read.
type Table struct {
	reg *rdma.Region

	mu    sync.Mutex
	epoch common.Epoch
	state [MaxNodes + 1]uint64
	inc   [MaxNodes + 1]common.Epoch

	// EpochBumps counts evictions won (each bumps the cluster epoch).
	EpochBumps metrics.Counter
	// FalseSuspicions counts evictions refused because the suspect's
	// heartbeat advanced past the reporter's observation.
	FalseSuspicions metrics.Counter
}

// NewTable registers the membership region and service on the PMFS endpoint.
func NewTable(ep *rdma.Endpoint) *Table {
	t := &Table{reg: ep.RegisterRegion(Region, RegionSize)}
	ep.Serve(Service, t.handle)
	return t
}

func (t *Table) handle(req []byte) ([]byte, error) {
	if len(req) < 1 {
		return nil, common.ErrShortBuffer
	}
	switch req[0] {
	case opJoin:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		epoch, hb, err := t.Join(node)
		if err != nil {
			return nil, err
		}
		resp := make([]byte, 16)
		binary.LittleEndian.PutUint64(resp[0:8], uint64(epoch))
		binary.LittleEndian.PutUint64(resp[8:16], hb)
		return resp, nil
	case opEvict:
		if len(req) < 21 {
			return nil, common.ErrShortBuffer
		}
		reporter := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		suspect := common.NodeID(binary.LittleEndian.Uint16(req[3:5]))
		hb := binary.LittleEndian.Uint64(req[5:13])
		from := common.Epoch(binary.LittleEndian.Uint64(req[13:21]))
		won, epoch := t.Evict(reporter, suspect, hb, from)
		resp := make([]byte, 9)
		if won {
			resp[0] = 1
		}
		binary.LittleEndian.PutUint64(resp[1:9], uint64(epoch))
		return resp, nil
	case opDrain, opDrained:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		var epoch common.Epoch
		var err error
		if req[0] == opDrain {
			epoch, err = t.Drain(node)
		} else {
			epoch, err = t.Drained(node)
		}
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, uint64(epoch)), nil
	case opAlloc:
		node, err := t.Alloc()
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint16(nil, uint16(node)), nil
	case opFree:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:3]))
		if err := t.Free(node); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return nil, fmt.Errorf("membership: op %d: %w", req[0], common.ErrNoService)
}

// Join admits node (fresh or restarting) under a new incarnation epoch and
// returns the epoch plus the node's current heartbeat sequence. Joining is
// refused while the slot is fenced: a survivor is still replaying the
// previous incarnation's state, and two incarnations must never overlap. It
// is likewise refused mid-drain — a drain only moves forward.
func (t *Table) Join(node common.NodeID) (common.Epoch, uint64, error) {
	if err := CheckNode(node); err != nil {
		return 0, 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] == StateFenced {
		return 0, 0, fmt.Errorf("membership: node %d: takeover in progress: %w", node, common.ErrFenced)
	}
	if t.state[node] == StateDraining {
		return 0, 0, fmt.Errorf("membership: node %d: %w", node, common.ErrDraining)
	}
	t.epoch++
	hb, _ := t.reg.LocalRead64(HBOff(node))
	hb++ // a join is itself proof of life; stale evictions must lose
	t.state[node] = StateLive
	t.inc[node] = t.epoch
	t.writeLocked(node, hb)
	return t.epoch, hb, nil
}

// Alloc reserves the lowest reusable slot — one that is free or whose
// previous tenant drained cleanly — and moves it to Joining so concurrent
// allocations cannot hand out the same id. It returns ErrUnknownNode when
// every slot is taken. Slots of crashed nodes (Fenced/Down) are NOT reused:
// a restart of the same identity may still claim them, and their unstamped
// versions resolve through the recovered-peer fate rule keyed by that id;
// an operator frees them explicitly with Free.
func (t *Table) Alloc() (common.NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree || t.state[n] == StateDrained {
			t.state[n] = StateJoining
			t.inc[n] = 0
			hb, _ := t.reg.LocalRead64(HBOff(n))
			t.writeLocked(n, hb)
			return n, nil
		}
	}
	return 0, fmt.Errorf("membership: alloc: table full: %w", ErrUnknownNode)
}

// Free releases a slot whose tenant is gone for good — drained, recovered
// after a crash (Down), or a reservation that never joined — back to Free so
// Alloc can reuse it. Freeing a live, draining, or fenced slot is refused.
func (t *Table) Free(node common.NodeID) error {
	if err := CheckNode(node); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state[node] {
	case StateDrained, StateDown, StateJoining:
		t.state[node] = StateFree
		t.inc[node] = 0
		hb, _ := t.reg.LocalRead64(HBOff(node))
		t.writeLocked(node, hb)
		return nil
	case StateFree:
		return nil // idempotent
	}
	return fmt.Errorf("membership: free node %d: state %s", node, StateName(t.state[node]))
}

// Drain moves a live node to Draining and bumps the cluster epoch (a drain
// is a topology change peers must observe). The incarnation stays valid:
// the Gate keeps admitting the draining node's stamped requests so in-flight
// transactions finish, and agents keep renewing the lease — a draining node
// is alive, just refusing new work.
func (t *Table) Drain(node common.NodeID) (common.Epoch, error) {
	if err := CheckNode(node); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] == StateDraining {
		return t.epoch, nil // idempotent: a retried drain must not error
	}
	if t.state[node] != StateLive {
		return 0, fmt.Errorf("membership: drain node %d: state %s", node, StateName(t.state[node]))
	}
	t.epoch++
	t.state[node] = StateDraining
	hb, _ := t.reg.LocalRead64(HBOff(node))
	t.writeLocked(node, hb)
	return t.epoch, nil
}

// Drained completes a graceful drain: the node finished its in-flight
// transactions, flushed its dirty frames, and released its locks, so the
// incarnation is fenced cleanly (the Gate stops admitting it) and the slot
// becomes reusable by Alloc — with zero takeover and zero redo replay, in
// contrast to Evict.
func (t *Table) Drained(node common.NodeID) (common.Epoch, error) {
	if err := CheckNode(node); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] == StateDrained {
		return t.epoch, nil // idempotent
	}
	if t.state[node] != StateDraining {
		return 0, fmt.Errorf("membership: drained node %d: state %s", node, StateName(t.state[node]))
	}
	t.epoch++
	t.state[node] = StateDrained
	hb, _ := t.reg.LocalRead64(HBOff(node))
	t.writeLocked(node, hb)
	return t.epoch, nil
}

// Evict fences suspect on reporter's behalf. It wins only if the cluster
// epoch still matches the reporter's view and the suspect's heartbeat has
// not advanced past the reporter's observation; exactly one concurrent
// reporter can win. The winner receives the new cluster epoch and owns the
// takeover.
func (t *Table) Evict(reporter, suspect common.NodeID, observedHB uint64, from common.Epoch) (bool, common.Epoch) {
	if CheckNode(suspect) != nil || reporter == suspect {
		return false, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[suspect] != StateLive || t.epoch != from {
		// Already fenced/down (someone else won) or the membership moved
		// under the reporter; not a false suspicion, just a lost race.
		return false, t.epoch
	}
	hb, _ := t.reg.LocalRead64(HBOff(suspect))
	if hb != observedHB {
		t.FalseSuspicions.Inc()
		return false, t.epoch
	}
	t.epoch++
	t.state[suspect] = StateFenced
	t.EpochBumps.Inc()
	t.writeLocked(suspect, hb)
	return true, t.epoch
}

// MarkRecovered moves a fenced node to Down: takeover finished, the node's
// durable effects are resolved, and a restart may rejoin.
func (t *Table) MarkRecovered(node common.NodeID) {
	if CheckNode(node) != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[node] != StateFenced {
		return
	}
	t.state[node] = StateDown
	hb, _ := t.reg.LocalRead64(HBOff(node))
	t.writeLocked(node, hb)
}

// Recovered reports whether node is gone and its effects are fully
// resolved — takeover completed after a crash (Down) or a graceful drain
// finished (Drained) — the signal that lets readers resolve the node's
// unstamped-but-committed versions as visible (CSNMin) instead of treating
// them as active. (For a reused slot the new tenant's published spec-CTS
// floor covers the old incarnation's ids, so the fate rule hands over
// seamlessly.)
func (t *Table) Recovered(node common.NodeID) bool {
	if CheckNode(node) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state[node] == StateDown || t.state[node] == StateDrained
}

// State returns node's current lifecycle state word.
func (t *Table) State(node common.NodeID) uint64 {
	if CheckNode(node) != nil {
		return StateFree
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state[node]
}

// CurrentEpoch returns the cluster epoch.
func (t *Table) CurrentEpoch() common.Epoch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// SlotInfo is one occupied slot in a Snapshot.
type SlotInfo struct {
	Node  common.NodeID
	State uint64
	Inc   common.Epoch
}

// Snapshot returns the cluster epoch and every non-free slot, in id order —
// the raw material for a topology view.
func (t *Table) Snapshot() (common.Epoch, []SlotInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SlotInfo
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree {
			continue
		}
		out = append(out, SlotInfo{Node: n, State: t.state[n], Inc: t.inc[n]})
	}
	return t.epoch, out
}

// Reset clears every slot (full-cluster crash). The cluster epoch is
// retained so it stays monotonic across the restart.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree {
			continue
		}
		t.state[n] = StateFree
		t.inc[n] = 0
		t.writeLocked(n, 0)
	}
}

// Gate returns the epoch gate fusion servers consult: a stamped request is
// admitted only while its (node, incarnation epoch) names the live
// incarnation. A draining incarnation still passes — the whole point of a
// graceful drain is that in-flight transactions commit normally; the gate
// closes only at Drained. Epoch 0 marks system-internal or pre-membership
// requests and always passes.
func (t *Table) Gate() common.EpochGate {
	return func(node common.NodeID, e common.Epoch) error {
		if e == 0 {
			return nil
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if node >= 1 && node <= MaxNodes && t.inc[node] == e &&
			(t.state[node] == StateLive || t.state[node] == StateDraining) {
			return nil
		}
		return fmt.Errorf("membership: node %d epoch %d fenced: %w", node, e, common.ErrStaleEpoch)
	}
}

// Remirror republishes the table's serialized state — cluster epoch,
// per-slot incarnation epochs and lifecycle states — into the fabric region.
// Heartbeat words are left alone: agents own them through replicated
// one-sided writes. The pmfs replication tier calls this after a replica
// failover, because Join/Evict mutate Go state and mirror it with local
// writes, which bypass the replicated fabric path; a promoted replica's
// region must be re-seeded from what the Table actually serialized.
func (t *Table) Remirror() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.reg.LocalWrite64(0, uint64(t.epoch))
	for n := common.NodeID(1); n <= MaxNodes; n++ {
		if t.state[n] == StateFree && t.inc[n] == 0 {
			continue
		}
		off := SlotOff(n)
		_ = t.reg.LocalWrite64(off+offEpoch, uint64(t.inc[n]))
		_ = t.reg.LocalWrite64(off+offState, t.state[n])
	}
}

// writeLocked mirrors node's slot (and the cluster epoch) into the region.
func (t *Table) writeLocked(node common.NodeID, hb uint64) {
	_ = t.reg.LocalWrite64(0, uint64(t.epoch))
	off := SlotOff(node)
	_ = t.reg.LocalWrite64(off+offEpoch, uint64(t.inc[node]))
	_ = t.reg.LocalWrite64(off+offHB, hb)
	_ = t.reg.LocalWrite64(off+offState, t.state[node])
}
