package membership

import (
	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

// StateOff returns the region offset of node's state word (the word the
// Table mirrors into the region on every lifecycle transition).
func StateOff(node common.NodeID) int { return SlotOff(node) + offState }

// RemoteView is a satellite process's read-only window onto the seed's
// membership table: lifecycle states are observed with one-sided fabric
// reads of the mirrored region, so no membership RPC and no local Table are
// needed to answer the recovery-fate question readers ask.
type RemoteView struct {
	conn rdma.Conn
}

// NewRemoteView returns a view reading the membership region on the PMFS
// endpoint reachable through conn.
func NewRemoteView(conn rdma.Conn) *RemoteView {
	return &RemoteView{conn: conn}
}

// Recovered mirrors Table.Recovered across the fabric: true once node's
// takeover completed (state Down) or its graceful drain finished (Drained).
// Unreachable tables read as not recovered, which resolves in-doubt versions
// conservatively (still active). Out-of-range ids answer false through the
// same CheckNode bounds rule the Table uses (a boolean question has no error
// channel; callers that need the typed error use CheckNode directly).
func (v *RemoteView) Recovered(node common.NodeID) bool {
	if CheckNode(node) != nil {
		return false
	}
	s, err := v.conn.Read64(common.PMFSNode, Region, StateOff(node))
	return err == nil && (s == StateDown || s == StateDrained)
}

// State reads node's mirrored lifecycle state word; out-of-range ids and
// unreachable tables read as StateFree.
func (v *RemoteView) State(node common.NodeID) uint64 {
	if CheckNode(node) != nil {
		return StateFree
	}
	s, err := v.conn.Read64(common.PMFSNode, Region, StateOff(node))
	if err != nil {
		return StateFree
	}
	return s
}
