package membership

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
)

// Config tunes an Agent's lease cadence.
type Config struct {
	// RenewInterval is the heartbeat period. Default 15ms.
	RenewInterval time.Duration
	// LeaseTimeout is how long a peer's heartbeat may stand still before
	// the peer becomes a suspect. Must comfortably exceed RenewInterval
	// plus fabric jitter. Default 90ms.
	LeaseTimeout time.Duration
}

func (c *Config) fill() {
	if c.RenewInterval <= 0 {
		c.RenewInterval = 15 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 90 * time.Millisecond
	}
}

// Agent is a node's membership actor: it joins the cluster, renews the
// node's lease, watches peers, and (when it wins an eviction) drives the
// takeover callback. Renewals and detection run on separate goroutines so
// a long takeover cannot starve the survivor's own lease.
type Agent struct {
	node  common.NodeID
	pmfs  common.NodeID
	conn  rdma.Conn
	cfg   Config
	stamp *common.EpochStamp
	retry common.RetryPolicy

	// Renewals counts successful lease renewals.
	Renewals metrics.Counter
	// Suspicions counts eviction attempts this agent made.
	Suspicions metrics.Counter
	// FailSlowSuspicions counts peers this agent has newly marked as
	// fail-slow: still renewing (so never evictable) but with a smoothed
	// heartbeat gap well past the renewal cadence. Fail-slow nodes are the
	// gray-failure case lease timeouts cannot see; the mark is advisory —
	// it steers hedging/alerting, never eviction.
	FailSlowSuspicions metrics.Counter

	epoch   atomic.Uint64
	hb      atomic.Uint64
	evicted atomic.Bool
	lastOK  atomic.Int64 // wall nanos of the last confirmed-valid lease

	onTakeover func(dead common.NodeID, epoch common.Epoch)

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup

	slowMu sync.Mutex
	slow   map[common.NodeID]bool
}

// Fail-slow hysteresis, in units of RenewInterval: a peer is suspected
// fail-slow once its heartbeat-gap EWMA exceeds 5/2× the renewal cadence
// (sampling aliasing alone can push the observed gap to ~2×, so the bar
// sits above that) and cleared once it falls back under 3/2×. Both bounds
// sit far below LeaseTimeout: a fail-slow peer still holds its lease.
const (
	failSlowSuspectNum = 5
	failSlowSuspectDen = 2
	failSlowClearNum   = 3
	failSlowClearDen   = 2
)

// SlowPeers returns the peers currently suspected fail-slow, ascending.
func (a *Agent) SlowPeers() []common.NodeID {
	a.slowMu.Lock()
	defer a.slowMu.Unlock()
	out := make([]common.NodeID, 0, len(a.slow))
	for n := range a.slow {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// noteGap folds one smoothed heartbeat gap into the fail-slow state
// machine for peer n.
func (a *Agent) noteGap(n common.NodeID, ewma time.Duration) {
	ri := a.cfg.RenewInterval
	a.slowMu.Lock()
	defer a.slowMu.Unlock()
	if a.slow[n] {
		if ewma*failSlowClearDen <= ri*failSlowClearNum {
			delete(a.slow, n)
		}
		return
	}
	if ewma*failSlowSuspectDen > ri*failSlowSuspectNum {
		if a.slow == nil {
			a.slow = make(map[common.NodeID]bool)
		}
		a.slow[n] = true
		a.FailSlowSuspicions.Inc()
	}
}

// clearSlow drops any fail-slow mark for a peer that left the live set.
func (a *Agent) clearSlow(n common.NodeID) {
	a.slowMu.Lock()
	delete(a.slow, n)
	a.slowMu.Unlock()
}

// NewAgent creates the agent for node, heartbeating against the membership
// table on pmfs. stamp (may be nil) receives the incarnation epoch on Join
// so the node's fusion clients stamp their requests with it.
func NewAgent(node, pmfs common.NodeID, fabric *rdma.Fabric, stamp *common.EpochStamp, cfg Config) *Agent {
	cfg.fill()
	return &Agent{
		node:  node,
		pmfs:  pmfs,
		conn:  fabric.From(node),
		cfg:   cfg,
		stamp: stamp,
		retry: common.DefaultRetryPolicy(),
	}
}

// SetRetryPolicy overrides the transient-fault retry policy for the join
// and eviction RPCs.
func (a *Agent) SetRetryPolicy(p common.RetryPolicy) { a.retry = p }

// SetOnTakeover installs the callback run (on the detector goroutine) when
// this agent wins a peer's eviction.
func (a *Agent) SetOnTakeover(fn func(dead common.NodeID, epoch common.Epoch)) { a.onTakeover = fn }

// Join admits the node under a fresh incarnation epoch. It retries
// transient faults but surfaces ErrFenced (takeover of the previous
// incarnation still running) to the caller, who should back off and retry.
func (a *Agent) Join() error {
	req := make([]byte, 3)
	req[0] = opJoin
	binary.LittleEndian.PutUint16(req[1:3], uint16(a.node))
	var resp []byte
	err := common.Retry(a.retry, func() error {
		var err error
		resp, err = a.conn.Call(a.pmfs, Service, req)
		return err
	})
	if err != nil {
		return fmt.Errorf("membership: node %d join: %w", a.node, err)
	}
	if len(resp) < 16 {
		return fmt.Errorf("membership: node %d join: %w", a.node, common.ErrShortBuffer)
	}
	epoch := binary.LittleEndian.Uint64(resp[0:8])
	a.epoch.Store(epoch)
	a.hb.Store(binary.LittleEndian.Uint64(resp[8:16]))
	a.evicted.Store(false)
	a.lastOK.Store(time.Now().UnixNano())
	if a.stamp != nil {
		a.stamp.Store(common.Epoch(epoch))
	}
	return nil
}

// Epoch returns the incarnation epoch learned at Join.
func (a *Agent) Epoch() common.Epoch { return common.Epoch(a.epoch.Load()) }

// Evicted reports whether this agent has observed its own eviction.
func (a *Agent) Evicted() bool { return a.evicted.Load() }

// Start launches the renewal and detection loops. Idempotent.
func (a *Agent) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		return
	}
	a.started = true
	a.stop = make(chan struct{})
	a.wg.Add(2)
	go a.renewLoop()
	go a.detectLoop()
}

// Stop halts both loops and waits for them. Idempotent; safe if Start was
// never called.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started {
		a.mu.Unlock()
		return
	}
	a.started = false
	close(a.stop)
	a.mu.Unlock()
	a.wg.Wait()
}

// CheckValid is the lease self-check a node runs before publishing a
// commit: it returns ErrStaleEpoch once the node has been evicted, so a
// slow-but-alive zombie aborts instead of publishing under a lease it no
// longer holds. A recently confirmed lease passes without fabric traffic;
// otherwise the agent verifies its slot synchronously.
func (a *Agent) CheckValid() error {
	if a.evicted.Load() {
		return fmt.Errorf("membership: node %d evicted: %w", a.node, common.ErrStaleEpoch)
	}
	if time.Since(time.Unix(0, a.lastOK.Load())) < a.cfg.LeaseTimeout/2 {
		return nil
	}
	ok, err := a.verifySlot()
	if err != nil {
		return fmt.Errorf("membership: node %d lease check: %w", a.node, err)
	}
	if !ok {
		return fmt.Errorf("membership: node %d evicted: %w", a.node, common.ErrStaleEpoch)
	}
	return nil
}

// verifySlot reads the node's own slot and reports whether it still names
// this incarnation as live or draining. A draining incarnation still holds
// its lease — in-flight transactions must keep committing while the drain
// runs — so only a fence (eviction or drain completion) latches the evicted
// flag.
func (a *Agent) verifySlot() (bool, error) {
	var slot [slotSize]byte
	if err := a.conn.Read(a.pmfs, Region, SlotOff(a.node), slot[:]); err != nil {
		return false, err
	}
	inc := binary.LittleEndian.Uint64(slot[offEpoch:])
	state := binary.LittleEndian.Uint64(slot[offState:])
	if (state != StateLive && state != StateDraining) || inc != a.epoch.Load() {
		a.evicted.Store(true)
		return false, nil
	}
	a.lastOK.Store(time.Now().UnixNano())
	return true, nil
}

// StartDrain moves this node's slot to Draining through the membership
// service (serialized with joins and evictions; bumps the cluster epoch).
// Peers observe the transition on their next detector scan and stop
// tracking the node for eviction; the lease itself stays valid.
func (a *Agent) StartDrain() error {
	return a.drainOp(opDrain)
}

// FinishDrain fences this incarnation cleanly: slot to Drained, reusable by
// a future Alloc. Call only after the node's last transaction finished and
// its state is flushed; the Gate refuses the incarnation from here on.
func (a *Agent) FinishDrain() error {
	return a.drainOp(opDrained)
}

func (a *Agent) drainOp(op byte) error {
	req := make([]byte, 3)
	req[0] = op
	binary.LittleEndian.PutUint16(req[1:3], uint16(a.node))
	err := common.Retry(a.retry, func() error {
		_, err := a.conn.Call(a.pmfs, Service, req)
		return err
	})
	if err != nil {
		return fmt.Errorf("membership: node %d drain op %d: %w", a.node, op, err)
	}
	return nil
}

// renewLoop keeps the lease alive: verify the slot still names this
// incarnation, then bump the heartbeat word with a one-sided write. The
// loop exits once the agent observes its own eviction.
func (a *Agent) renewLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.RenewInterval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		ok, err := a.verifySlot()
		if err != nil {
			continue // transient fabric trouble; the next tick retries
		}
		if !ok {
			return // fenced out; stop renewing, CheckValid now fails fast
		}
		hb := a.hb.Add(1)
		if err := a.conn.Write64(a.pmfs, Region, HBOff(a.node), hb); err != nil {
			a.hb.Add(^uint64(0)) // undo; re-derive from the slot next tick
			continue
		}
		a.Renewals.Inc()
		a.lastOK.Store(time.Now().UnixNano())
	}
}

// detectLoop watches every peer's heartbeat. A heartbeat that stands still
// past the lease timeout triggers an eviction attempt; winning it runs the
// takeover callback inline (renewals continue on their own goroutine). It
// also keeps an EWMA of each peer's inter-heartbeat gap: a gap that grows
// well past the renewal cadence while staying under the lease timeout marks
// the peer fail-slow (see noteGap) without ever evicting it.
func (a *Agent) detectLoop() {
	defer a.wg.Done()
	type track struct {
		hb      uint64
		seen    time.Time
		gapEWMA time.Duration
	}
	peers := make(map[common.NodeID]track)
	fenced := make(map[common.NodeID]time.Time)
	t := time.NewTicker(a.cfg.RenewInterval)
	defer t.Stop()
	buf := make([]byte, RegionSize)
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		if err := a.conn.Read(a.pmfs, Region, 0, buf); err != nil {
			continue
		}
		epoch := common.Epoch(binary.LittleEndian.Uint64(buf[0:8]))
		now := time.Now()
		for n := common.NodeID(1); n <= MaxNodes; n++ {
			off := SlotOff(n)
			state := binary.LittleEndian.Uint64(buf[off+offState:])
			if n == a.node || state != StateLive {
				if _, known := peers[n]; known {
					delete(peers, n)
					a.clearSlow(n)
				}
				// A slot stuck Fenced means the eviction winner never ran
				// the recovery: it was an agent with no takeover pipeline
				// (a satellite process detecting a peer it cannot repair),
				// or a survivor that died mid-takeover. Any detector with
				// a callback finishes the job — the core pipeline is
				// idempotent under its takeover lock, and a per-node
				// cooldown keeps a persistently failing recovery from
				// being retried every tick.
				if state == StateFenced && a.onTakeover != nil &&
					now.Sub(fenced[n]) > a.cfg.LeaseTimeout {
					fenced[n] = now
					a.onTakeover(n, epoch)
				} else if state != StateFenced {
					delete(fenced, n)
				}
				continue
			}
			hb := binary.LittleEndian.Uint64(buf[off+offHB:])
			tr, known := peers[n]
			if !known || hb != tr.hb {
				nt := track{hb: hb, seen: now}
				if known {
					gap := now.Sub(tr.seen)
					if tr.gapEWMA == 0 {
						nt.gapEWMA = gap
					} else {
						nt.gapEWMA = tr.gapEWMA + (gap-tr.gapEWMA)/4
					}
					a.noteGap(n, nt.gapEWMA)
				}
				peers[n] = nt
				continue
			}
			if now.Sub(tr.seen) <= a.cfg.LeaseTimeout {
				continue
			}
			a.Suspicions.Inc()
			won, newEpoch := a.evict(n, hb, epoch)
			peers[n] = track{hb: hb, seen: now} // either way, re-arm
			if won && a.onTakeover != nil {
				a.onTakeover(n, newEpoch)
			}
		}
	}
}

// evict asks the table to fence suspect; returns whether this agent won.
func (a *Agent) evict(suspect common.NodeID, observedHB uint64, from common.Epoch) (bool, common.Epoch) {
	req := make([]byte, 21)
	req[0] = opEvict
	binary.LittleEndian.PutUint16(req[1:3], uint16(a.node))
	binary.LittleEndian.PutUint16(req[3:5], uint16(suspect))
	binary.LittleEndian.PutUint64(req[5:13], observedHB)
	binary.LittleEndian.PutUint64(req[13:21], uint64(from))
	var resp []byte
	err := common.Retry(a.retry, func() error {
		var err error
		resp, err = a.conn.Call(a.pmfs, Service, req)
		return err
	})
	if err != nil || len(resp) < 9 {
		return false, 0
	}
	return resp[0] == 1, common.Epoch(binary.LittleEndian.Uint64(resp[1:9]))
}
