package wire

import (
	"encoding/binary"
	"fmt"

	"polardbmp/internal/common"
)

// Little-endian payload builders, mirroring the fabric services' encoding
// idiom.

// AppendU16 appends v little-endian.
func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendBytes appends a u32 length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendString appends s with a u32 length prefix.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

func u16(b []byte) uint16 { return binary.LittleEndian.Uint16(b) }
func u32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func u64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// Reader is a sticky-error cursor over a payload: decode methods return zero
// values once the payload is exhausted and Err reports the failure, so
// handlers can decode a whole message and check once.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a cursor over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload: %w", common.ErrShortBuffer)
	}
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the undecoded remainder of the payload.
func (r *Reader) Rest() []byte { return r.b }

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := u16(r.b)
	r.b = r.b[2:]
	return v
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := u32(r.b)
	r.b = r.b[4:]
	return v
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := u64(r.b)
	r.b = r.b[8:]
	return v
}

// Bytes decodes a u32-length-prefixed byte string. The result aliases the
// payload buffer.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// Str decodes a u32-length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }
