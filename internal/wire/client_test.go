package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// stubBackend is an in-memory Backend + StatusBackend for exercising the
// client's reconnect and ambiguity paths without an engine: committed writes
// land in data, rollbacks are observable on a channel, and hooks let tests
// block or fail a commit at the exact moment a connection dies.
type stubBackend struct {
	mu      sync.Mutex
	data    map[string][]byte
	nextTrx uint64

	// commitHook, when set, runs inside Tx.Commit before the writes apply.
	commitHook func(*stubTx) error
	// statusHook, when set, serves TxStatus.
	statusHook func(g common.GTrxID) (uint8, uint64, error)

	rolledBack chan common.GTrxID
	commits    atomic.Int64
}

func newStubBackend() *stubBackend {
	return &stubBackend{
		data:       make(map[string][]byte),
		rolledBack: make(chan common.GTrxID, 16),
	}
}

func (b *stubBackend) Begin(iso uint8, budget time.Duration) (Tx, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextTrx++
	return &stubTx{
		be:     b,
		g:      common.GTrxID{Node: 1, Trx: common.TrxID(b.nextTrx), Slot: uint32(b.nextTrx), Version: 1},
		writes: make(map[string][]byte),
	}, nil
}

func (b *stubBackend) CreateSpace(name string) (uint32, error) { return 1, nil }
func (b *stubBackend) SpaceID(name string) (uint32, error)     { return 1, nil }
func (b *stubBackend) StatsJSON() ([]byte, error)              { return []byte("{}"), nil }

func (b *stubBackend) TxStatus(g common.GTrxID) (uint8, uint64, error) {
	if b.statusHook != nil {
		return b.statusHook(g)
	}
	return TxStatusUnknown, 0, nil
}

func (b *stubBackend) get(space uint32, key []byte) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.data[fmt.Sprintf("%d/%s", space, key)]
}

type stubTx struct {
	be     *stubBackend
	g      common.GTrxID
	writes map[string][]byte
}

func (t *stubTx) GTrxID() common.GTrxID { return t.g }

func (t *stubTx) Get(space uint32, key []byte) ([]byte, error) {
	if v, ok := t.writes[fmt.Sprintf("%d/%s", space, key)]; ok {
		return v, nil
	}
	if v := t.be.get(space, key); v != nil {
		return v, nil
	}
	return nil, common.ErrNotFound
}
func (t *stubTx) GetForUpdate(space uint32, key []byte) ([]byte, error) { return t.Get(space, key) }
func (t *stubTx) Insert(space uint32, key, value []byte) error {
	t.writes[fmt.Sprintf("%d/%s", space, key)] = append([]byte(nil), value...)
	return nil
}
func (t *stubTx) Update(space uint32, key, value []byte) error { return t.Insert(space, key, value) }
func (t *stubTx) Upsert(space uint32, key, value []byte) error { return t.Insert(space, key, value) }
func (t *stubTx) Delete(space uint32, key []byte) error        { return nil }
func (t *stubTx) Scan(space uint32, from, to []byte, limit int) ([]KV, error) {
	return nil, nil
}

func (t *stubTx) Commit() error {
	if t.be.commitHook != nil {
		if err := t.be.commitHook(t); err != nil {
			return err
		}
	}
	t.be.mu.Lock()
	for k, v := range t.writes {
		t.be.data[k] = v
	}
	t.be.mu.Unlock()
	t.be.commits.Add(1)
	return nil
}

func (t *stubTx) Rollback() error {
	t.be.rolledBack <- t.g
	return nil
}

func serveStub(t *testing.T, be *stubBackend) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeSessions(lis, "stub", be, &NetCounters{})
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

// A dial to a dead address must come back as common.ErrUnreachable — the
// transient class retry loops and the gateway's health prober key off.
func TestDialDeadAddressIsUnreachable(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()

	_, err = DialSession(addr, SessionConfig{DialTimeout: time.Second})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !errors.Is(err, common.ErrUnreachable) {
		t.Fatalf("dial error = %v; want ErrUnreachable", err)
	}
}

// A half-open server (accepts, then never answers the hello) must fail the
// dial at DialTimeout with ErrUnreachable, not hang: this is the read half
// of a partition-while-connecting.
func TestDialHalfOpenServerTimesOut(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()

	start := time.Now()
	_, err = DialSession(lis.Addr().String(), SessionConfig{DialTimeout: 200 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial of half-open server succeeded")
	}
	if !errors.Is(err, common.ErrUnreachable) {
		t.Fatalf("dial error = %v; want ErrUnreachable", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("half-open dial took %v; want ~DialTimeout", elapsed)
	}
}

// When the server goes away under an established session, in-flight and
// subsequent calls fail with ErrUnreachable; once a server is back on the
// same address, the next call must redial transparently (pick's inline
// redial of dead slots) instead of wedging the pool forever.
func TestClientRedialsAfterServerRestart(t *testing.T) {
	be := newStubBackend()
	srv, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{Name: "reconnect-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if err := cl.Ping(); !errors.Is(err, common.ErrUnreachable) {
		t.Fatalf("ping with server down = %v; want ErrUnreachable", err)
	}

	// Resurrect a server on the same address (a replacement process after
	// a crash — the gateway harness's rejoin phase in miniature).
	var lis net.Listener
	for i := 0; i < 50; i++ {
		if lis, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srv2 := ServeSessions(lis, "stub2", be, &NetCounters{})
	defer srv2.Close()

	// The first call after resurrection may race the redial; it must
	// succeed within a short, bounded window — never wedge.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after server restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// A connection that dies with a commit in flight must surface
// *AmbiguousCommitError carrying the transaction's global id — the server
// may still complete the commit, so the client cannot claim abort or
// success. This is the !responded half of the ambiguity contract.
func TestCommitAmbiguousWhenConnDiesMidCommit(t *testing.T) {
	be := newStubBackend()
	entered := make(chan struct{})
	release := make(chan struct{})
	be.commitHook = func(*stubTx) error {
		close(entered)
		<-release
		return nil
	}
	srv, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tx.GTrx().Zero() {
		t.Fatal("v3 begin returned a zero global transaction id")
	}
	if err := tx.Insert(1, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	commitErr := make(chan error, 1)
	go func() { commitErr <- tx.Commit() }()
	<-entered

	// Kill every session conn with the commit parked server-side, then let
	// the commit finish into the void.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	err = <-commitErr
	close(release)
	<-closed

	var amb *AmbiguousCommitError
	if !errors.As(err, &amb) {
		t.Fatalf("commit over dying conn = %v; want *AmbiguousCommitError", err)
	}
	if !errors.Is(err, common.ErrCommitAmbiguous) {
		t.Fatalf("ambiguous commit error does not match ErrCommitAmbiguous: %v", err)
	}
	if amb.GTrx != tx.GTrx() {
		t.Fatalf("ambiguous commit carries gtrx %v; want %v", amb.GTrx, tx.GTrx())
	}
	// The commit DID land server-side — exactly why the client must not
	// guess "aborted".
	if got := be.get(1, []byte("k")); string(got) != "v" {
		t.Fatalf("server-side commit lost: got %q", got)
	}
}

// A commit the server itself reports as ambiguous (e.g. a satellite died
// mid-takeover) must round-trip the sentinel through the typed error codec
// and come out as *AmbiguousCommitError on the client.
func TestCommitAmbiguousSentinelRoundTrip(t *testing.T) {
	be := newStubBackend()
	be.commitHook = func(*stubTx) error {
		return fmt.Errorf("takeover in flight: %w", common.ErrCommitAmbiguous)
	}
	_, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	var amb *AmbiguousCommitError
	if !errors.As(err, &amb) || amb.GTrx != tx.GTrx() {
		t.Fatalf("server-reported ambiguity = %v; want *AmbiguousCommitError with gtrx %v", err, tx.GTrx())
	}
}

// A definitive server-side commit error (here: write conflict) must NOT be
// wrapped as ambiguous — the server answered, the outcome is known.
func TestCommitDefinitiveErrorIsNotAmbiguous(t *testing.T) {
	be := newStubBackend()
	be.commitHook = func(*stubTx) error { return common.ErrWriteConflict }
	_, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("commit = %v; want ErrWriteConflict", err)
	}
	if errors.Is(err, common.ErrCommitAmbiguous) {
		t.Fatalf("definitive conflict reported as ambiguous: %v", err)
	}
}

// A client that vanishes with transactions open must not leak them: the
// server's session teardown rolls back every open transaction, so a dying
// client cannot pin row locks or TIT slots.
func TestServerRollsBackOrphanedTxOnDisconnect(t *testing.T) {
	be := newStubBackend()
	_, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(1, []byte("orphan"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	g := tx.GTrx()
	cl.Close() // vanish without commit or rollback

	select {
	case rb := <-be.rolledBack:
		if rb != g {
			t.Fatalf("server rolled back %v; want %v", rb, g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never rolled back the orphaned transaction")
	}
	if got := be.get(1, []byte("orphan")); got != nil {
		t.Fatalf("orphaned transaction's write published: %q", got)
	}
}

// ResolveTx must absorb transient ErrUnreachable answers with backoff and
// land on the definitive outcome — the exact loop the chaos harness leans
// on when it resolves ambiguous commits through a healing partition.
func TestResolveTxAbsorbsTransientUnreachable(t *testing.T) {
	be := newStubBackend()
	var calls atomic.Int64
	be.statusHook = func(g common.GTrxID) (uint8, uint64, error) {
		if calls.Add(1) <= 3 {
			return 0, 0, common.ErrUnreachable
		}
		return TxStatusCommitted, 42, nil
	}
	_, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := common.GTrxID{Node: 1, Trx: 7, Slot: 7, Version: 1}
	outcome, cts, err := cl.ResolveTx(g, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != TxStatusCommitted || cts != 42 {
		t.Fatalf("ResolveTx = (%d, %d); want (committed, 42)", outcome, cts)
	}
	if n := calls.Load(); n < 4 {
		t.Fatalf("status served %d times; want >= 4 (3 unreachable + 1 definitive)", n)
	}
}

// ResolveTx against a permanently unreachable status backend must give up
// at its timeout — bounded, never wedged — and report the transaction as
// unresolved rather than guessing an outcome.
func TestResolveTxBoundedByTimeout(t *testing.T) {
	be := newStubBackend()
	be.statusHook = func(g common.GTrxID) (uint8, uint64, error) {
		return 0, 0, common.ErrUnreachable
	}
	_, addr := serveStub(t, be)

	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := common.GTrxID{Node: 1, Trx: 9, Slot: 9, Version: 1}
	start := time.Now()
	outcome, _, err := cl.ResolveTx(g, 400*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ResolveTx with unreachable status succeeded")
	}
	if outcome != TxStatusUnknown {
		t.Fatalf("unresolved outcome = %d; want TxStatusUnknown", outcome)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("ResolveTx ran %v past a 400ms timeout", elapsed)
	}
}

// A zero global id cannot be resolved (pre-v3 server or a backend without
// global ids): ResolveTx must say so immediately instead of polling.
func TestResolveTxRejectsZeroID(t *testing.T) {
	be := newStubBackend()
	_, addr := serveStub(t, be)
	cl, err := DialSession(addr, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.ResolveTx(common.GTrxID{}, time.Second); err == nil {
		t.Fatal("ResolveTx of the zero id succeeded")
	}
}
