// Package wire is the binary framing layer shared by every network-facing
// component: the socket fabric transport (rdma), the client session protocol
// (mpserver/mpshell/mpbench) and the gateway proxy. It is a deliberately
// tiny codec — length-prefixed frames with a kind/op/id header — over which
// each protocol defines its own op vocabulary, plus the typed error mapping
// that lets errors.Is semantics survive a process boundary.
//
// Frame layout on the wire (all integers little-endian):
//
//	u32  length of the remainder (kind..payload), 10 ≤ length ≤ MaxFrame
//	u8   kind (request / response / control)
//	u8   op (protocol-specific opcode)
//	u64  id (request/response correlation; pipelining token)
//	...  payload (length-10 bytes)
package wire

import (
	"errors"
	"fmt"
	"io"
)

// Frame kinds. Requests carry an op and expect a response bearing the same
// id; control frames run the handshake and never interleave with requests.
const (
	KindRequest  = 1
	KindResponse = 2
	KindControl  = 3
)

const (
	// frameHeader is the fixed kind+op+id portion counted by the length
	// prefix.
	frameHeader = 1 + 1 + 8
	// MaxFrame bounds the length prefix: nothing in the protocols ships
	// more than a few pages per frame, so anything bigger is a corrupt or
	// hostile stream and is rejected before allocation.
	MaxFrame = 16 << 20
)

// Codec errors. ErrFrameTooLarge and ErrBadFrame mark streams that cannot be
// resynchronized; callers must drop the connection.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Frame is one decoded protocol frame. Payload aliases the decode buffer and
// must be copied if retained beyond the next read.
type Frame struct {
	Kind    uint8
	Op      uint8
	ID      uint64
	Payload []byte
}

// WireSize returns the frame's encoded size including the length prefix.
func (f Frame) WireSize() int { return 4 + frameHeader + len(f.Payload) }

// AppendFrame appends the encoded frame to b and returns the extended slice.
func AppendFrame(b []byte, f Frame) []byte {
	n := frameHeader + len(f.Payload)
	b = AppendU32(b, uint32(n))
	b = append(b, f.Kind, f.Op)
	b = AppendU64(b, f.ID)
	return append(b, f.Payload...)
}

// DecodeFrame decodes one frame from the front of b, returning the number of
// bytes consumed. io.ErrUnexpectedEOF reports a frame truncated mid-body;
// decoding continues once more bytes arrive only for that error.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	n := int(u32(b))
	if n < frameHeader {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d below header: %w", n, ErrBadFrame)
	}
	if n > MaxFrame {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d: %w", n, ErrFrameTooLarge)
	}
	if len(b) < 4+n {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	f := Frame{
		Kind:    b[4],
		Op:      b[5],
		ID:      u64(b[6:]),
		Payload: b[14 : 4+n],
	}
	return f, 4 + n, nil
}

// ReadFrame reads exactly one frame from r. buf is an optional reusable
// scratch buffer; the returned slice is the (possibly grown) scratch to pass
// back in, and the frame's payload aliases it.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	n := int(u32(hdr[:]))
	if n < frameHeader {
		return Frame{}, buf, fmt.Errorf("wire: frame length %d below header: %w", n, ErrBadFrame)
	}
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("wire: frame length %d: %w", n, ErrFrameTooLarge)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	f := Frame{
		Kind:    buf[0],
		Op:      buf[1],
		ID:      u64(buf[2:]),
		Payload: buf[10:n],
	}
	return f, buf, nil
}

// WriteFrame encodes f into scratch and writes it to w in one call (one
// syscall on an unbuffered conn; the caller serializes concurrent writers).
// The returned slice is the grown scratch buffer for reuse.
func WriteFrame(w io.Writer, scratch []byte, f Frame) ([]byte, error) {
	scratch = AppendFrame(scratch[:0], f)
	_, err := w.Write(scratch)
	return scratch, err
}
