package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"polardbmp/internal/common"
)

// Client is a session-protocol client: a small pool of framed connections to
// one server (or gateway), each pipelining requests from any number of
// goroutines. Transactions are pinned to the connection they began on, so a
// gateway can route per-connection without tracking transaction state.
type Client struct {
	addr string
	cfg  SessionConfig

	mu     sync.Mutex
	conns  []*sessionConn
	next   int
	closed bool
}

// SessionConfig tunes DialSession.
type SessionConfig struct {
	// Name identifies this client in the server's hello handshake.
	Name string
	// Conns is the pool size (default 1).
	Conns int
	// Counters receives this client's frame accounting (may be nil).
	Counters *NetCounters
	// DialTimeout bounds each connection attempt (default 3s).
	DialTimeout time.Duration
	// ProtoCeiling caps the protocol version offered in the hello (0 = the
	// newest this build speaks). Tests use it to act as an old client; the
	// server then negotiates the session down to it.
	ProtoCeiling uint16
}

func (c *SessionConfig) fill() {
	if c.Name == "" {
		c.Name = "client"
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.ProtoCeiling == 0 || c.ProtoCeiling > SessionProtoVersion {
		c.ProtoCeiling = SessionProtoVersion
	}
}

// DialSession connects the pool and runs the hello handshake on every
// connection. ServerName reports what the far end called itself.
func DialSession(addr string, cfg SessionConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg}
	for i := 0; i < cfg.Conns; i++ {
		sc, err := c.dialOne()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, sc)
	}
	return c, nil
}

// ServerName returns the name the server presented in the handshake.
func (c *Client) ServerName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) == 0 {
		return ""
	}
	return c.conns[0].serverName
}

// ProtoVersion returns the negotiated session protocol version (zero before
// any connection handshook).
func (c *Client) ProtoVersion() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) == 0 {
		return 0
	}
	return c.conns[0].proto
}

// Close tears down every pooled connection. In-flight calls fail with
// ErrUnreachable.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, sc := range conns {
		sc.fail(errSessionClosed(c.addr))
	}
}

func errSessionClosed(addr string) error {
	return fmt.Errorf("wire: session to %s closed: %w", addr, common.ErrUnreachable)
}

// pick returns a live pooled connection (round-robin), redialing slots whose
// connection died.
func (c *Client) pick() (*sessionConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errSessionClosed(c.addr)
	}
	for range c.conns {
		sc := c.conns[c.next%len(c.conns)]
		c.next++
		if sc.alive() {
			return sc, nil
		}
	}
	// Every pooled conn is dead: redial one slot inline.
	sc, err := c.dialOne()
	if err != nil {
		return nil, err
	}
	if len(c.conns) == 0 {
		c.conns = append(c.conns, sc)
	} else {
		c.conns[c.next%len(c.conns)] = sc
		c.next++
	}
	return sc, nil
}

func (c *Client) dialOne() (*sessionConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %v: %w", c.addr, err, common.ErrUnreachable)
	}
	sc := &sessionConn{conn: conn, nc: c.cfg.Counters, pending: make(map[uint64]chan callResult)}
	if err := sc.handshake(c.cfg.Name, c.cfg.ProtoCeiling, c.cfg.DialTimeout); err != nil {
		_ = conn.Close()
		return nil, err
	}
	c.cfg.Counters.ConnOpened(false)
	go sc.readLoop()
	return sc, nil
}

// call runs one request/response on any pooled connection.
func (c *Client) call(op uint8, payload []byte) ([]byte, error) {
	sc, err := c.pick()
	if err != nil {
		return nil, err
	}
	return sc.call(op, payload)
}

// Ping round-trips a no-op request (health probe).
func (c *Client) Ping() error {
	_, err := c.call(OpPing, nil)
	return err
}

// StatsJSON fetches the server's stats snapshot.
func (c *Client) StatsJSON() ([]byte, error) {
	return c.call(OpStats, nil)
}

// TopologyJSON fetches the cluster topology snapshot (protocol v2; a v1
// session or a server without an admin backend answers ErrNoService).
func (c *Client) TopologyJSON() ([]byte, error) {
	return c.call(OpTopology, nil)
}

// Drain gracefully drains a node through the server (protocol v2). The call
// blocks until the drain finished or the server's drain timeout expired.
func (c *Client) Drain(node uint16) error {
	_, err := c.call(OpDrain, AppendU16(nil, node))
	return err
}

// JoinInfoJSON fetches the server's cluster-join coordinates (protocol v2).
func (c *Client) JoinInfoJSON() ([]byte, error) {
	return c.call(OpJoinInfo, nil)
}

// TxStatus resolves the outcome of a transaction from its global id
// (protocol v3). Returns one of the TxStatus* outcomes and, for committed
// transactions, the commit timestamp.
func (c *Client) TxStatus(g common.GTrxID) (outcome uint8, cts uint64, err error) {
	out, err := c.call(OpTxStatus, g.Marshal(nil))
	if err != nil {
		return TxStatusUnknown, 0, err
	}
	rd := NewReader(out)
	outcome = rd.U8()
	cts = rd.U64()
	return outcome, cts, rd.Err()
}

// ResolveTx resolves an ambiguous commit: it polls TxStatus until the
// outcome is definitive (committed or aborted), absorbing transient
// transport faults and TxStatusActive answers with jittered backoff, for at
// most timeout. This is the only correct reaction to ErrCommitAmbiguous —
// never retry the transaction before knowing its fate. A TxStatusUnknown or
// expiry returns the outcome so far with a non-nil error; the caller must
// treat the transaction as unresolved, not as aborted.
func (c *Client) ResolveTx(g common.GTrxID, timeout time.Duration) (outcome uint8, cts uint64, err error) {
	if g.Zero() {
		return TxStatusUnknown, 0, fmt.Errorf("wire: resolve tx: zero global id (protocol < v3?)")
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	for {
		outcome, cts, err = c.TxStatus(g)
		switch {
		case err == nil && (outcome == TxStatusCommitted || outcome == TxStatusAborted):
			return outcome, cts, nil
		case err == nil && outcome == TxStatusUnknown:
			return TxStatusUnknown, 0, fmt.Errorf("wire: resolve tx %v: outcome unresolvable", g)
		case err != nil && !errors.Is(err, common.ErrUnreachable) && !errors.Is(err, common.ErrInjected):
			// A definitive server-side refusal (bad op, no status backend).
			return TxStatusUnknown, 0, err
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("wire: resolve tx %v: still %d after %v", g, outcome, timeout)
			}
			return TxStatusUnknown, 0, err
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// CreateSpace creates (or finds) a named tablespace.
func (c *Client) CreateSpace(name string) (uint32, error) {
	out, err := c.call(OpCreateSpace, AppendString(nil, name))
	if err != nil {
		return 0, err
	}
	return NewReader(out).U32(), nil
}

// SpaceID resolves a tablespace name.
func (c *Client) SpaceID(name string) (uint32, error) {
	out, err := c.call(OpSpaceID, AppendString(nil, name))
	if err != nil {
		return 0, err
	}
	return NewReader(out).U32(), nil
}

// Begin opens a transaction pinned to one pooled connection. budget > 0
// ships the end-to-end deadline to the server.
func (c *Client) Begin(iso uint8, budget time.Duration) (*ClientTx, error) {
	sc, err := c.pick()
	if err != nil {
		return nil, err
	}
	req := append([]byte{iso}, AppendU64(nil, uint64(budget/time.Microsecond))...)
	out, err := sc.call(OpBegin, req)
	if err != nil {
		return nil, err
	}
	rd := NewReader(out)
	tx := &ClientTx{sc: sc, id: rd.U64()}
	if sc.proto >= SessionProtoV3 {
		// v3: the response carries the engine's global transaction id — the
		// token an ambiguous commit is later resolved with.
		if g, _, err := common.UnmarshalGTrxID(rd.Rest()); err == nil {
			tx.gtrx = g
		}
	}
	return tx, nil
}

// ClientTx is a transaction handle; safe for one goroutine (like sql.Tx).
type ClientTx struct {
	sc   *sessionConn
	id   uint64
	gtrx common.GTrxID // global id (zero below protocol v3)
}

// GTrx returns the transaction's global id (zero when the session protocol
// predates v3 or the backend has no global ids).
func (tx *ClientTx) GTrx() common.GTrxID { return tx.gtrx }

func (tx *ClientTx) keyReq(space uint32, key []byte) []byte {
	b := AppendU64(nil, tx.id)
	b = AppendU32(b, space)
	return AppendBytes(b, key)
}

// Get reads a key under the transaction's read view.
func (tx *ClientTx) Get(space uint32, key []byte) ([]byte, error) {
	out, err := tx.sc.call(OpGet, tx.keyReq(space, key))
	if err != nil {
		return nil, err
	}
	return NewReader(out).Bytes(), nil
}

// GetForUpdate reads a key holding its row lock.
func (tx *ClientTx) GetForUpdate(space uint32, key []byte) ([]byte, error) {
	out, err := tx.sc.call(OpGetForUpdate, tx.keyReq(space, key))
	if err != nil {
		return nil, err
	}
	return NewReader(out).Bytes(), nil
}

func (tx *ClientTx) put(op uint8, space uint32, key, value []byte) error {
	req := AppendBytes(tx.keyReq(space, key), value)
	_, err := tx.sc.call(op, req)
	return err
}

// Insert adds a new row (ErrKeyExists if present).
func (tx *ClientTx) Insert(space uint32, key, value []byte) error {
	return tx.put(OpInsert, space, key, value)
}

// Update overwrites an existing row (ErrNotFound if absent).
func (tx *ClientTx) Update(space uint32, key, value []byte) error {
	return tx.put(OpUpdate, space, key, value)
}

// Upsert inserts or overwrites.
func (tx *ClientTx) Upsert(space uint32, key, value []byte) error {
	return tx.put(OpUpsert, space, key, value)
}

// Delete removes a row.
func (tx *ClientTx) Delete(space uint32, key []byte) error {
	_, err := tx.sc.call(OpDelete, tx.keyReq(space, key))
	return err
}

// Scan returns up to limit rows in [from, to) (nil bounds are open).
func (tx *ClientTx) Scan(space uint32, from, to []byte, limit int) ([]KV, error) {
	req := AppendU64(nil, tx.id)
	req = AppendU32(req, space)
	req = AppendBytes(req, from)
	req = AppendBytes(req, to)
	req = AppendU32(req, uint32(limit))
	out, err := tx.sc.call(OpScan, req)
	if err != nil {
		return nil, err
	}
	rd := NewReader(out)
	n := int(rd.U32())
	kvs := make([]KV, 0, n)
	for i := 0; i < n; i++ {
		k := append([]byte(nil), rd.Bytes()...)
		v := append([]byte(nil), rd.Bytes()...)
		kvs = append(kvs, KV{Key: k, Value: v})
	}
	return kvs, rd.Err()
}

// AmbiguousCommitError reports a commit whose outcome is unknown: the
// request was sent (or may have been) but the connection died before the
// answer came back, or a gateway lost its backend with the commit in flight.
// It matches errors.Is(err, common.ErrCommitAmbiguous); GTrx is the token to
// resolve the real outcome with (Client.ResolveTx / TxStatus). The
// transaction MUST NOT be blindly retried.
type AmbiguousCommitError struct {
	GTrx  common.GTrxID
	cause error
}

func (e *AmbiguousCommitError) Error() string {
	return fmt.Sprintf("wire: commit of %v: %v", e.GTrx, e.cause)
}

// Unwrap exposes the transport/status error that made the commit ambiguous.
func (e *AmbiguousCommitError) Unwrap() error { return e.cause }

// Is matches the shared sentinel.
func (e *AmbiguousCommitError) Is(target error) bool {
	return target == common.ErrCommitAmbiguous
}

// Commit makes the transaction durable. If the connection dies with the
// commit in flight the outcome is genuinely unknown — the server completes
// an in-flight commit even when its client vanishes — so Commit returns an
// *AmbiguousCommitError (errors.Is ErrCommitAmbiguous) instead of guessing;
// resolve it with Client.ResolveTx. Errors the server itself reported are
// definitive and returned as-is.
func (tx *ClientTx) Commit() error {
	_, err, responded := tx.sc.callEx(OpCommit, AppendU64(nil, tx.id))
	if err == nil {
		return nil
	}
	if !tx.gtrx.Zero() && (!responded || errors.Is(err, common.ErrCommitAmbiguous)) {
		return &AmbiguousCommitError{GTrx: tx.gtrx, cause: err}
	}
	return err
}

// Rollback abandons the transaction.
func (tx *ClientTx) Rollback() error {
	_, err := tx.sc.call(OpRollback, AppendU64(nil, tx.id))
	return err
}

// callResult carries one response out of the read loop.
type callResult struct {
	payload []byte
	err     error
}

// sessionConn is one framed connection with pipelined request/response
// correlation.
type sessionConn struct {
	conn       net.Conn
	nc         *NetCounters
	serverName string
	proto      uint16 // negotiated protocol version

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	dead    error
}

func (sc *sessionConn) alive() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.dead == nil
}

// handshake runs the hello exchange synchronously before the read loop owns
// the connection.
func (sc *sessionConn) handshake(name string, version uint16, timeout time.Duration) error {
	hello := Frame{Kind: KindControl, Op: SessHello, Payload: AppendHello(nil, version, name)}
	_ = sc.conn.SetDeadline(time.Now().Add(timeout))
	defer sc.conn.SetDeadline(time.Time{})
	wbuf, err := WriteFrame(sc.conn, nil, hello)
	if err != nil {
		return fmt.Errorf("wire: hello: %v: %w", err, common.ErrUnreachable)
	}
	sc.wbuf = wbuf[:0]
	sc.nc.FrameOut(hello.WireSize())
	f, _, err := ReadFrame(sc.conn, nil)
	if err != nil {
		return fmt.Errorf("wire: hello ack: %v: %w", err, common.ErrUnreachable)
	}
	sc.nc.FrameIn(f.WireSize())
	if f.Kind != KindControl || f.Op != SessHelloAck {
		return fmt.Errorf("wire: hello ack kind %d op %d: %w", f.Kind, f.Op, ErrBadFrame)
	}
	rd := NewReader(f.Payload)
	if err := DecodeStatus(rd); err != nil {
		return fmt.Errorf("wire: server refused session: %w", err)
	}
	if ver, name, err := DecodeHello(rd.Rest()); err == nil {
		sc.serverName = name
		sc.proto = ver
	}
	return nil
}

func (sc *sessionConn) call(op uint8, payload []byte) ([]byte, error) {
	out, err, _ := sc.callEx(op, payload)
	return out, err
}

// callEx is call plus the ambiguity bit: responded reports whether a
// response frame actually came back. A false responded with a non-nil error
// means the connection died with the request in flight — for mutating ops
// (commit) the outcome on the server is unknown.
func (sc *sessionConn) callEx(op uint8, payload []byte) (out []byte, err error, responded bool) {
	ch := make(chan callResult, 1)
	sc.mu.Lock()
	if sc.dead != nil {
		deadErr := sc.dead
		sc.mu.Unlock()
		return nil, deadErr, false
	}
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	sc.mu.Unlock()

	f := Frame{Kind: KindRequest, Op: op, ID: id, Payload: payload}
	sc.nc.EnterOp()
	defer sc.nc.LeaveOp()
	sc.wmu.Lock()
	wbuf, werr := WriteFrame(sc.conn, sc.wbuf, f)
	sc.wbuf = wbuf
	sc.wmu.Unlock()
	if werr != nil {
		// fail (or a racing readLoop delivery) resolves our channel exactly
		// once; if the response actually made it, use it.
		sc.fail(fmt.Errorf("wire: send: %v: %w", werr, common.ErrUnreachable))
	} else {
		sc.nc.FrameOut(f.WireSize())
	}
	res := <-ch
	if res.err != nil {
		return nil, res.err, false
	}
	rd := NewReader(res.payload)
	if err := DecodeStatus(rd); err != nil {
		return nil, err, true
	}
	return rd.Rest(), nil, true
}

func (sc *sessionConn) readLoop() {
	var rbuf []byte
	for {
		f, buf, err := ReadFrame(sc.conn, rbuf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sc.nc.CodecError()
			}
			sc.fail(fmt.Errorf("wire: connection lost: %v: %w", err, common.ErrUnreachable))
			return
		}
		rbuf = buf
		sc.nc.FrameIn(f.WireSize())
		if f.Kind != KindResponse {
			continue
		}
		sc.mu.Lock()
		ch := sc.pending[f.ID]
		delete(sc.pending, f.ID)
		sc.mu.Unlock()
		if ch != nil {
			ch <- callResult{payload: append([]byte(nil), f.Payload...)}
		}
	}
}

// fail marks the connection dead and resolves every pending call with err.
func (sc *sessionConn) fail(err error) {
	sc.mu.Lock()
	if sc.dead != nil {
		sc.mu.Unlock()
		return
	}
	sc.dead = err
	pending := sc.pending
	sc.pending = make(map[uint64]chan callResult)
	sc.mu.Unlock()
	_ = sc.conn.Close()
	sc.nc.ConnClosed()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}
