package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"polardbmp/internal/common"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindRequest, Op: 7, ID: 1, Payload: []byte("hello")},
		{Kind: KindResponse, Op: 0, ID: 1 << 60, Payload: nil},
		{Kind: KindControl, Op: 255, ID: 0, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var b []byte
	for _, f := range frames {
		b = AppendFrame(b, f)
	}
	for i, want := range frames {
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Op != want.Op || got.ID != want.ID ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		b = b[n:]
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
}

func TestReadFrameStream(t *testing.T) {
	var b []byte
	b = AppendFrame(b, Frame{Kind: KindRequest, Op: 3, ID: 42, Payload: []byte("abc")})
	b = AppendFrame(b, Frame{Kind: KindResponse, Op: 3, ID: 42, Payload: []byte("xyz")})
	r := bytes.NewReader(b)
	var scratch []byte
	f1, scratch, err := ReadFrame(r, scratch)
	if err != nil || string(f1.Payload) != "abc" {
		t.Fatalf("first frame: %v %q", err, f1.Payload)
	}
	f2, _, err := ReadFrame(r, scratch)
	if err != nil || string(f2.Payload) != "xyz" || f2.Kind != KindResponse {
		t.Fatalf("second frame: %v %+v", err, f2)
	}
	if _, _, err := ReadFrame(r, nil); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, Frame{Kind: KindRequest, Op: 1, ID: 9, Payload: []byte("payload")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestDecodeFrameRejectsBadLengths(t *testing.T) {
	tooSmall := AppendU32(nil, 4) // below the 10-byte header
	if _, _, err := DecodeFrame(append(tooSmall, make([]byte, 8)...)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("undersized length: want ErrBadFrame, got %v", err)
	}
	tooBig := AppendU32(nil, MaxFrame+1)
	if _, _, err := DecodeFrame(append(tooBig, make([]byte, 32)...)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: want ErrFrameTooLarge, got %v", err)
	}
	// ReadFrame must reject the oversized prefix without allocating it.
	if _, _, err := ReadFrame(bytes.NewReader(tooBig), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame oversized: got %v", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, e := range codeTable {
		b := AppendStatus(nil, e.err)
		got := DecodeStatus(NewReader(b))
		if !errors.Is(got, e.err) {
			t.Fatalf("code %d: errors.Is lost across the wire: got %v want %v", e.code, got, e.err)
		}
	}
	// Wrapped errors keep both message and sentinel.
	wrapped := errorsJoin()
	b := AppendStatus(nil, wrapped)
	got := DecodeStatus(NewReader(b))
	if !errors.Is(got, common.ErrOverloaded) {
		t.Fatalf("wrapped: lost sentinel: %v", got)
	}
	if got.Error() != wrapped.Error() {
		t.Fatalf("wrapped: lost message: %q vs %q", got.Error(), wrapped.Error())
	}
	// nil round-trips to nil; unknown errors stay plain but readable.
	if err := DecodeStatus(NewReader(AppendStatus(nil, nil))); err != nil {
		t.Fatalf("nil error decoded as %v", err)
	}
	plain := errors.New("some backend failure")
	if err := DecodeStatus(NewReader(AppendStatus(nil, plain))); err == nil || err.Error() != plain.Error() {
		t.Fatalf("plain error mangled: %v", err)
	}
}

func errorsJoin() error {
	return errors.Join(errors.New("lock stripe 7 shed request"), common.ErrOverloaded)
}

func TestReaderSticky(t *testing.T) {
	r := NewReader(AppendU16(nil, 7))
	if r.U16() != 7 || r.Err() != nil {
		t.Fatal("first read failed")
	}
	_ = r.U64() // past the end
	if !errors.Is(r.Err(), common.ErrShortBuffer) {
		t.Fatalf("want sticky ErrShortBuffer, got %v", r.Err())
	}
	if r.U32() != 0 || r.Bytes() != nil {
		t.Fatal("reads after error must return zero values")
	}
}

func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Kind: KindRequest, Op: 1, ID: 7, Payload: []byte("seed")}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendU32(nil, MaxFrame+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d consumed", n)
			}
			return
		}
		if n < frameHeader+4 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Whatever decoded must re-encode to the exact consumed bytes.
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data[:n], re)
		}
	})
}
