package wire

import (
	"errors"
	"fmt"

	"polardbmp/internal/common"
)

// Typed error mapping: every sentinel error the engine can return crosses
// the wire as a small code plus the original message, so a client-side
// errors.Is(err, common.ErrOverloaded) (or ErrDeadlineExceeded, ErrDeadlock,
// ...) behaves exactly as it does in-process — retry loops, deadline
// handling and chaos tests do not care which side of a socket the engine
// runs on.
//
// Codes are part of the protocol: append only, never renumber.
const (
	codeOK uint16 = iota
	codeGeneric
	codeShortBuffer
	codeCorrupt
	codeNodeDown
	codeNotFound
	codeKeyExists
	codeDeadlock
	codeFenced
	codeLockTimeout
	codeWriteConflict
	codeTxDone
	codeClosed
	codeReadOnly
	codeDeadlineExceeded
	codeOverloaded
	codeNoRegion
	codeNoService
	codeOutOfBounds
	codeInjected
	codeUnreachable
	codeUnknownNode
	codeDraining
	codeCommitAmbiguous
)

// codeTable pairs each sentinel with its wire code, most-specific first
// (ErrorCode matches with errors.Is, so order matters only among wrapped
// sentinels, which do not overlap here).
var codeTable = []struct {
	code uint16
	err  error
}{
	{codeShortBuffer, common.ErrShortBuffer},
	{codeCorrupt, common.ErrCorrupt},
	{codeNodeDown, common.ErrNodeDown},
	{codeNotFound, common.ErrNotFound},
	{codeKeyExists, common.ErrKeyExists},
	{codeDeadlock, common.ErrDeadlock},
	{codeFenced, common.ErrFenced},
	{codeLockTimeout, common.ErrLockTimeout},
	{codeWriteConflict, common.ErrWriteConflict},
	{codeTxDone, common.ErrTxDone},
	{codeClosed, common.ErrClosed},
	{codeReadOnly, common.ErrReadOnly},
	{codeDeadlineExceeded, common.ErrDeadlineExceeded},
	{codeOverloaded, common.ErrOverloaded},
	{codeNoRegion, common.ErrNoRegion},
	{codeNoService, common.ErrNoService},
	{codeOutOfBounds, common.ErrOutOfBounds},
	{codeInjected, common.ErrInjected},
	{codeUnreachable, common.ErrUnreachable},
	{codeUnknownNode, common.ErrUnknownNode},
	{codeDraining, common.ErrDraining},
	{codeCommitAmbiguous, common.ErrCommitAmbiguous},
}

var codeIndex = func() map[uint16]error {
	m := make(map[uint16]error, len(codeTable))
	for _, e := range codeTable {
		m[e.code] = e.err
	}
	return m
}()

// ErrorCode classifies err for transmission.
func ErrorCode(err error) uint16 {
	if err == nil {
		return codeOK
	}
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return codeGeneric
}

// RemoteError is a decoded peer error: it prints the peer's message and
// unwraps to the sentinel the code named, preserving errors.Is.
type RemoteError struct {
	Msg  string
	Base error
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap exposes the mapped sentinel (nil for codeGeneric).
func (e *RemoteError) Unwrap() error { return e.Base }

// DecodeError rebuilds the error named by (code, msg); nil for codeOK.
func DecodeError(code uint16, msg string) error {
	if code == codeOK {
		return nil
	}
	base := codeIndex[code]
	if base != nil && msg == base.Error() {
		return base // unwrapped sentinel round-trips to identity
	}
	if msg == "" {
		msg = fmt.Sprintf("wire: remote error code %d", code)
	}
	return &RemoteError{Msg: msg, Base: base}
}

// AppendStatus appends the response status header (code + message) for err.
func AppendStatus(b []byte, err error) []byte {
	code := ErrorCode(err)
	b = AppendU16(b, code)
	if err == nil {
		return AppendU32(b, 0) // empty message
	}
	return AppendString(b, err.Error())
}

// DecodeStatus consumes a status header from r and returns the mapped error
// (nil on success). Cursor errors surface through r.Err as usual.
func DecodeStatus(r *Reader) error {
	code := r.U16()
	msg := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	return DecodeError(code, msg)
}
