package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"polardbmp/internal/common"
)

// Server accepts client sessions on a listener and executes their requests
// against a Backend. Requests on one connection are pipelined: each runs in
// its own goroutine and responses return in completion order, correlated by
// frame id. Operations on the same transaction serialize on a per-tx mutex;
// a connection that drops with transactions open has them rolled back, so a
// dying client cannot leak row locks or TIT slots.
type Server struct {
	name string
	be   Backend
	nc   *NetCounters
	lis  net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServeSessions starts serving the session protocol for be on lis. name is
// echoed in the hello ack (observability). Close stops the listener and
// tears down every live session.
func ServeSessions(lis net.Listener, name string, be Backend, nc *NetCounters) *Server {
	s := &Server{name: name, be: be, nc: nc, lis: lis, sessions: make(map[*session]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Close stops accepting, closes every session connection, rolls their open
// transactions back, and waits for all session goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	_ = s.lis.Close()
	for _, sess := range sessions {
		_ = sess.conn.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		sess := &session{srv: s, conn: conn, txs: make(map[uint64]*sessionTx)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.nc.ConnOpened(true)
		s.wg.Add(1)
		go sess.run()
	}
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.nc.ConnClosed()
}

// session is one accepted client connection.
type session struct {
	srv  *Server
	conn net.Conn
	// proto is the negotiated protocol version: min(client, server), fixed
	// at handshake. Ops newer than it are refused for this session.
	proto uint16

	wmu  sync.Mutex
	wbuf []byte

	txMu   sync.Mutex
	txs    map[uint64]*sessionTx
	nextTx uint64

	reqWG sync.WaitGroup
}

// sessionTx wraps one open transaction; mu serializes pipelined requests
// that name the same tx.
type sessionTx struct {
	mu   sync.Mutex
	tx   Tx
	done bool
}

func (ss *session) run() {
	defer ss.srv.wg.Done()
	defer ss.teardown()
	if err := ss.handshake(); err != nil {
		return
	}
	var rbuf []byte
	for {
		f, buf, err := ReadFrame(ss.conn, rbuf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				ss.srv.nc.CodecError()
			}
			return
		}
		rbuf = buf
		ss.srv.nc.FrameIn(f.WireSize())
		if f.Kind != KindRequest {
			ss.srv.nc.CodecError()
			return
		}
		payload := append([]byte(nil), f.Payload...)
		ss.srv.nc.EnterOp()
		ss.reqWG.Add(1)
		go func(op uint8, id uint64, payload []byte) {
			defer ss.reqWG.Done()
			defer ss.srv.nc.LeaveOp()
			result, err := ss.serve(op, payload)
			resp := AppendStatus(nil, err)
			resp = append(resp, result...)
			ss.send(Frame{Kind: KindResponse, Op: op, ID: id, Payload: resp})
		}(f.Op, f.ID, payload)
	}
}

// teardown runs when the read loop exits for any reason: wait out in-flight
// requests, roll back whatever transactions are still open, unregister.
func (ss *session) teardown() {
	_ = ss.conn.Close()
	ss.reqWG.Wait()
	ss.txMu.Lock()
	open := make([]*sessionTx, 0, len(ss.txs))
	for _, st := range ss.txs {
		open = append(open, st)
	}
	ss.txs = map[uint64]*sessionTx{}
	ss.txMu.Unlock()
	for _, st := range open {
		st.mu.Lock()
		if !st.done {
			st.done = true
			_ = st.tx.Rollback()
		}
		st.mu.Unlock()
	}
	ss.srv.dropSession(ss)
}

func (ss *session) handshake() error {
	_ = ss.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, _, err := ReadFrame(ss.conn, nil)
	if err != nil {
		return err
	}
	_ = ss.conn.SetReadDeadline(time.Time{})
	ss.srv.nc.FrameIn(f.WireSize())
	if f.Kind != KindControl || f.Op != SessHello {
		ss.srv.nc.CodecError()
		return fmt.Errorf("wire: session opened with frame kind %d op %d: %w", f.Kind, f.Op, ErrBadFrame)
	}
	version, _, err := DecodeHello(f.Payload)
	var status error
	switch {
	case err != nil:
		status = err
	case version == 0 || version > SessionProtoVersion:
		// A client from the future (or garbage): this server cannot promise
		// the semantics the client expects, so refuse at connect time.
		status = fmt.Errorf("wire: session version %d, server speaks <= %d: %w", version, SessionProtoVersion, common.ErrCorrupt)
	default:
		// Negotiate down: the session runs at the client's version, which
		// this server fully speaks. The ack carries the negotiated version.
		ss.proto = version
	}
	ack := AppendStatus(nil, status)
	ack = AppendHello(ack, ss.proto, ss.srv.name)
	ss.send(Frame{Kind: KindControl, Op: SessHelloAck, ID: f.ID, Payload: ack})
	return status
}

func (ss *session) send(f Frame) {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	buf, err := WriteFrame(ss.conn, ss.wbuf, f)
	ss.wbuf = buf
	if err == nil {
		ss.srv.nc.FrameOut(f.WireSize())
	}
}

// registerTx assigns a session-scoped tx id.
func (ss *session) registerTx(tx Tx) uint64 {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	ss.nextTx++
	id := ss.nextTx
	ss.txs[id] = &sessionTx{tx: tx}
	return id
}

func (ss *session) lookupTx(id uint64) (*sessionTx, error) {
	ss.txMu.Lock()
	defer ss.txMu.Unlock()
	st := ss.txs[id]
	if st == nil {
		return nil, fmt.Errorf("wire: tx %d: %w", id, common.ErrTxDone)
	}
	return st, nil
}

func (ss *session) finishTx(id uint64) {
	ss.txMu.Lock()
	delete(ss.txs, id)
	ss.txMu.Unlock()
}

// withTx runs fn holding the transaction's mutex. final removes the tx from
// the session (commit/rollback paths).
func (ss *session) withTx(id uint64, final bool, fn func(Tx) error) error {
	st, err := ss.lookupTx(id)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return fmt.Errorf("wire: tx %d: %w", id, common.ErrTxDone)
	}
	if final {
		st.done = true
		ss.finishTx(id)
	}
	return fn(st.tx)
}

func (ss *session) serve(op uint8, payload []byte) ([]byte, error) {
	rd := NewReader(payload)
	switch op {
	case OpBegin:
		iso := rd.U8()
		budget := time.Duration(rd.U64()) * time.Microsecond
		if err := rd.Err(); err != nil {
			return nil, err
		}
		tx, err := ss.srv.be.Begin(iso, budget)
		if err != nil {
			return nil, err
		}
		resp := AppendU64(nil, ss.registerTx(tx))
		if ss.proto >= SessionProtoV3 {
			// v3 responses carry the engine's global transaction id so the
			// client can resolve an ambiguous commit. A backend without
			// global ids sends the zero id (the client then cannot resolve,
			// only report ambiguity).
			var g common.GTrxID
			if gt, ok := tx.(GlobalTx); ok {
				g = gt.GTrxID()
			}
			resp = g.Marshal(resp)
		}
		return resp, nil
	case OpGet, OpGetForUpdate:
		id, space, key := rd.U64(), rd.U32(), rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		var val []byte
		err := ss.withTx(id, false, func(tx Tx) error {
			var err error
			if op == OpGetForUpdate {
				val, err = tx.GetForUpdate(space, key)
			} else {
				val, err = tx.Get(space, key)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		return AppendBytes(nil, val), nil
	case OpInsert, OpUpdate, OpUpsert:
		id, space, key, val := rd.U64(), rd.U32(), rd.Bytes(), rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, ss.withTx(id, false, func(tx Tx) error {
			switch op {
			case OpInsert:
				return tx.Insert(space, key, val)
			case OpUpdate:
				return tx.Update(space, key, val)
			default:
				return tx.Upsert(space, key, val)
			}
		})
	case OpDelete:
		id, space, key := rd.U64(), rd.U32(), rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, ss.withTx(id, false, func(tx Tx) error { return tx.Delete(space, key) })
	case OpScan:
		id, space, from, to, limit := rd.U64(), rd.U32(), rd.Bytes(), rd.Bytes(), rd.U32()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		// The codec cannot distinguish nil from empty; a zero-length bound
		// means unbounded (an empty exclusive upper bound excludes all keys,
		// which no client can want).
		if len(from) == 0 {
			from = nil
		}
		if len(to) == 0 {
			to = nil
		}
		var kvs []KV
		err := ss.withTx(id, false, func(tx Tx) error {
			var err error
			kvs, err = tx.Scan(space, from, to, int(limit))
			return err
		})
		if err != nil {
			return nil, err
		}
		out := AppendU32(nil, uint32(len(kvs)))
		for _, kv := range kvs {
			out = AppendBytes(out, kv.Key)
			out = AppendBytes(out, kv.Value)
		}
		return out, nil
	case OpCommit:
		id := rd.U64()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, ss.withTx(id, true, func(tx Tx) error { return tx.Commit() })
	case OpRollback:
		id := rd.U64()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, ss.withTx(id, true, func(tx Tx) error { return tx.Rollback() })
	case OpCreateSpace:
		name := rd.Str()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		space, err := ss.srv.be.CreateSpace(name)
		if err != nil {
			return nil, err
		}
		return AppendU32(nil, space), nil
	case OpSpaceID:
		name := rd.Str()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		space, err := ss.srv.be.SpaceID(name)
		if err != nil {
			return nil, err
		}
		return AppendU32(nil, space), nil
	case OpStats:
		return ss.srv.be.StatsJSON()
	case OpPing:
		return nil, nil
	case OpTopology, OpDrain, OpJoinInfo:
		if ss.proto < SessionProtoV2 {
			return nil, fmt.Errorf("wire: session op %d needs protocol v2 (negotiated v%d): %w", op, ss.proto, common.ErrNoService)
		}
		ab, ok := ss.srv.be.(AdminBackend)
		if !ok {
			return nil, fmt.Errorf("wire: session op %d: no admin backend: %w", op, common.ErrNoService)
		}
		switch op {
		case OpTopology:
			return ab.TopologyJSON()
		case OpJoinInfo:
			return ab.JoinInfoJSON()
		default: // OpDrain
			node := rd.U16()
			if err := rd.Err(); err != nil {
				return nil, err
			}
			return nil, ab.Drain(node)
		}
	case OpTxStatus:
		if ss.proto < SessionProtoV3 {
			return nil, fmt.Errorf("wire: session op %d needs protocol v3 (negotiated v%d): %w", op, ss.proto, common.ErrNoService)
		}
		sb, ok := ss.srv.be.(StatusBackend)
		if !ok {
			return nil, fmt.Errorf("wire: session op %d: no status backend: %w", op, common.ErrNoService)
		}
		g, _, err := common.UnmarshalGTrxID(rd.Rest())
		if err != nil {
			return nil, err
		}
		outcome, cts, err := sb.TxStatus(g)
		if err != nil {
			return nil, err
		}
		return AppendU64([]byte{outcome}, cts), nil
	default:
		return nil, fmt.Errorf("wire: session op %d: %w", op, common.ErrNoService)
	}
}
