package wire

import (
	"sync/atomic"

	"polardbmp/internal/metrics"
)

// NetCounters aggregates network-layer observability for one process: every
// framed connection (fabric peer links and client sessions) feeds the same
// instance, and the snapshot becomes the NetStats section of the stats JSON.
// All methods are nil-safe so instrumentation points need no guards.
type NetCounters struct {
	ConnsAccepted metrics.Counter
	ConnsDialed   metrics.Counter
	FramesIn      metrics.Counter
	FramesOut     metrics.Counter
	BytesIn       metrics.Counter
	BytesOut      metrics.Counter
	CodecErrors   metrics.Counter

	connsOpen atomic.Int64
	// pipeline tracks in-flight requests per process (depth gauge + high
	// watermark), the observable that shows pipelining actually happens.
	pipelineCur atomic.Int64
	pipelineMax atomic.Int64
}

// ConnOpened records an accepted or dialed connection becoming live.
func (n *NetCounters) ConnOpened(accepted bool) {
	if n == nil {
		return
	}
	if accepted {
		n.ConnsAccepted.Inc()
	} else {
		n.ConnsDialed.Inc()
	}
	n.connsOpen.Add(1)
}

// ConnClosed records a live connection going away.
func (n *NetCounters) ConnClosed() {
	if n != nil {
		n.connsOpen.Add(-1)
	}
}

// FrameIn records one received frame of total wire size bytes.
func (n *NetCounters) FrameIn(bytes int) {
	if n != nil {
		n.FramesIn.Inc()
		n.BytesIn.Add(int64(bytes))
	}
}

// FrameOut records one sent frame of total wire size bytes.
func (n *NetCounters) FrameOut(bytes int) {
	if n != nil {
		n.FramesOut.Inc()
		n.BytesOut.Add(int64(bytes))
	}
}

// CodecError records an unrecoverable framing error (connection dropped).
func (n *NetCounters) CodecError() {
	if n != nil {
		n.CodecErrors.Inc()
	}
}

// EnterOp marks one request in flight; pair with LeaveOp.
func (n *NetCounters) EnterOp() {
	if n == nil {
		return
	}
	d := n.pipelineCur.Add(1)
	for {
		m := n.pipelineMax.Load()
		if d <= m || n.pipelineMax.CompareAndSwap(m, d) {
			return
		}
	}
}

// LeaveOp marks one request finished.
func (n *NetCounters) LeaveOp() {
	if n != nil {
		n.pipelineCur.Add(-1)
	}
}

// NetSnapshot is a point-in-time copy of the counters.
type NetSnapshot struct {
	ConnsOpen     int64
	ConnsAccepted int64
	ConnsDialed   int64
	FramesIn      int64
	FramesOut     int64
	BytesIn       int64
	BytesOut      int64
	CodecErrors   int64
	PipelineDepth int64 // high watermark of in-flight requests
}

// Snapshot returns the current counter values (zero value if n is nil).
func (n *NetCounters) Snapshot() NetSnapshot {
	if n == nil {
		return NetSnapshot{}
	}
	return NetSnapshot{
		ConnsOpen:     n.connsOpen.Load(),
		ConnsAccepted: n.ConnsAccepted.Load(),
		ConnsDialed:   n.ConnsDialed.Load(),
		FramesIn:      n.FramesIn.Load(),
		FramesOut:     n.FramesOut.Load(),
		BytesIn:       n.BytesIn.Load(),
		BytesOut:      n.BytesOut.Load(),
		CodecErrors:   n.CodecErrors.Load(),
		PipelineDepth: n.pipelineMax.Load(),
	}
}
