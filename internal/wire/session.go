package wire

import (
	"time"

	"polardbmp/internal/common"
)

// Session protocol versions, carried in the hello exchange. The server
// negotiates down: a session runs at min(client, server), so an old client
// keeps working against a new server and only loses the ops its version
// never had. A client version the server predates (or zero) is refused, so
// incompatible binaries fail at connect time instead of mid-workload.
//
//   - v1: the transactional surface (OpBegin..OpPing).
//   - v2: adds the admin ops — OpTopology, OpDrain, OpJoinInfo.
//   - v3: adds commit-ambiguity resolution — OpBegin's response carries the
//     engine's global transaction id, and OpTxStatus resolves a transaction's
//     outcome after a lost connection (ErrCommitAmbiguous, ResolveTx).
const (
	SessionProtoV1      = 1
	SessionProtoV2      = 2
	SessionProtoV3      = 3
	SessionProtoVersion = SessionProtoV3
)

// Session control ops (KindControl frames; the handshake).
const (
	SessHello    uint8 = 1 // client -> server: [version u16][client name str]
	SessHelloAck uint8 = 2 // server -> client: [status]([version u16][server name str])
)

// Session request ops (KindRequest frames; the response echoes op and id
// with payload [status][result]).
const (
	OpBegin        uint8 = 1  // [iso u8][budget micros u64] -> [tx u64]
	OpGet          uint8 = 2  // [tx u64][space u32][key bytes] -> [val bytes]
	OpGetForUpdate uint8 = 3  // as OpGet
	OpInsert       uint8 = 4  // [tx u64][space u32][key bytes][val bytes] -> []
	OpUpdate       uint8 = 5  // as OpInsert
	OpUpsert       uint8 = 6  // as OpInsert
	OpDelete       uint8 = 7  // [tx u64][space u32][key bytes] -> []
	OpScan         uint8 = 8  // [tx u64][space u32][from bytes][to bytes][limit u32] -> [n u32]{[key bytes][val bytes]}*; zero-length bounds mean unbounded
	OpCommit       uint8 = 9  // [tx u64] -> []
	OpRollback     uint8 = 10 // [tx u64] -> []
	OpCreateSpace  uint8 = 11 // [name str] -> [space u32]
	OpSpaceID      uint8 = 12 // [name str] -> [space u32]
	OpStats        uint8 = 13 // [] -> [stats JSON bytes]
	OpPing         uint8 = 14 // [] -> []

	// v2 admin ops. Refused (ErrNoService) on sessions negotiated at v1 and
	// on backends without the admin surface.
	OpTopology uint8 = 15 // [] -> [topology JSON bytes]
	OpDrain    uint8 = 16 // [node u16] -> []
	OpJoinInfo uint8 = 17 // [] -> [join-info JSON bytes]

	// v3: resolve a transaction's outcome from its global id (the token a v3
	// OpBegin response carries). Refused (ErrNoService) below v3 and on
	// backends without the status surface. Note the v3 OpBegin response is
	// [tx u64][gtrx], not [tx u64].
	OpTxStatus uint8 = 18 // [gtrx] -> [outcome u8][cts u64]
)

// Transaction outcomes as reported by OpTxStatus (mirrors core.TxOutcome;
// part of the protocol — append only).
const (
	// TxStatusUnknown: no server-side layer could decide (outcome aged out of
	// every journal window). A resolution failure, never a guess.
	TxStatusUnknown uint8 = 0
	// TxStatusActive: the transaction (or its owner's takeover) is still in
	// flight; poll again.
	TxStatusActive uint8 = 1
	// TxStatusCommitted: durably committed; cts carries the commit timestamp.
	TxStatusCommitted uint8 = 2
	// TxStatusAborted: rolled back (including server-side rollback of a
	// transaction whose client connection died before commit).
	TxStatusAborted uint8 = 3
)

// KV is one key/value pair of a scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Backend is the database surface a session server exposes. The netsrv
// package adapts *core.Cluster to it; keeping the interface here (in
// primitive types) lets wire stay free of engine imports so rdma and core
// can both build on it.
type Backend interface {
	// Begin opens a transaction. budget > 0 propagates the client's
	// end-to-end deadline into the engine (ErrDeadlineExceeded on expiry).
	Begin(iso uint8, budget time.Duration) (Tx, error)
	// CreateSpace creates (or finds) a named tablespace.
	CreateSpace(name string) (uint32, error)
	// SpaceID resolves a tablespace name.
	SpaceID(name string) (uint32, error)
	// StatsJSON returns the process's stats snapshot as JSON.
	StatsJSON() ([]byte, error)
}

// AdminBackend is the optional cluster-administration surface behind the v2
// session ops. A Backend that also implements it serves topology snapshots,
// graceful drains, and join info; one that does not answers the admin ops
// with ErrNoService. Kept separate from Backend so existing adapters stay
// source-compatible.
type AdminBackend interface {
	// TopologyJSON returns the cluster topology snapshot as JSON.
	TopologyJSON() ([]byte, error)
	// Drain gracefully drains node (blocking until it finished or the drain
	// timeout expired).
	Drain(node uint16) error
	// JoinInfoJSON describes how a new process joins this cluster (fabric
	// address, cluster name, this daemon's node ids) as JSON.
	JoinInfoJSON() ([]byte, error)
}

// StatusBackend is the optional transaction-status surface behind the v3
// OpTxStatus op: resolve the outcome of a (possibly foreign) transaction
// from its global id. Backends without it answer OpTxStatus with
// ErrNoService.
type StatusBackend interface {
	// TxStatus reports one of the TxStatus* outcomes and, for committed
	// transactions, the commit timestamp.
	TxStatus(g common.GTrxID) (outcome uint8, cts uint64, err error)
}

// GlobalTx is the optional Tx extension exposing the engine's global
// transaction id. When the backend's transactions implement it, a v3 OpBegin
// response carries the id so the client can resolve an ambiguous commit.
type GlobalTx interface {
	GTrxID() common.GTrxID
}

// Tx is one open transaction on the backend. The server serializes calls on
// a single Tx; distinct transactions proceed concurrently.
type Tx interface {
	Get(space uint32, key []byte) ([]byte, error)
	GetForUpdate(space uint32, key []byte) ([]byte, error)
	Insert(space uint32, key, value []byte) error
	Update(space uint32, key, value []byte) error
	Upsert(space uint32, key, value []byte) error
	Delete(space uint32, key []byte) error
	Scan(space uint32, from, to []byte, limit int) ([]KV, error)
	Commit() error
	Rollback() error
}

// AppendHello encodes a SessHello payload.
func AppendHello(b []byte, version uint16, name string) []byte {
	b = AppendU16(b, version)
	return AppendString(b, name)
}

// DecodeHello decodes a SessHello payload.
func DecodeHello(payload []byte) (version uint16, name string, err error) {
	rd := NewReader(payload)
	version = rd.U16()
	name = rd.Str()
	return version, name, rd.Err()
}
