package baseline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/workload"
)

func TestOCCBasicCommit(t *testing.T) {
	db := NewOCCMM(2, OCCLatency{})
	tab, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(0)
	if err := tx.Insert(tab, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Visible from the other node.
	tx2, _ := db.Begin(1)
	v, err := tx2.Get(tab, []byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	tx2.Rollback()
}

func TestOCCConflictAborts(t *testing.T) {
	db := NewOCCMM(2, OCCLatency{})
	tab, _ := db.CreateTable("t")
	seed, _ := db.Begin(0)
	seed.Insert(tab, []byte("k"), []byte("v0"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	// Two nodes stage writes to the same key concurrently; the second
	// committer must get a write conflict ("deadlock error", §2.3).
	t1, _ := db.Begin(0)
	t2, _ := db.Begin(1)
	if err := t1.Update(tab, []byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tab, []byte("k"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := t2.Commit()
	if !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("second committer err = %v, want ErrWriteConflict", err)
	}
	if !common.IsRetryable(err) {
		t.Fatal("conflict must be retryable")
	}
	if db.Conflicts != 1 {
		t.Fatalf("conflicts = %d", db.Conflicts)
	}
}

func TestOCCPageGranularityConflict(t *testing.T) {
	db := NewOCCMM(2, OCCLatency{})
	tab, _ := db.CreateTable("t")
	// Find two distinct keys in the same bucket.
	var k1, k2 []byte
	base := []byte("key-000000")
	b0 := bucketOf(base, occBuckets)
	for i := 1; i < 100000; i++ {
		k := []byte(string(rune('a'+i%26)) + string(base[1:]) + string(rune('0'+i%10)))
		if bucketOf(k, occBuckets) == b0 && string(k) != string(base) {
			k1, k2 = base, k
			break
		}
	}
	if k2 == nil {
		t.Skip("no bucket collision found")
	}
	t1, _ := db.Begin(0)
	t2, _ := db.Begin(1)
	t1.Insert(tab, k1, []byte("a"))
	t2.Insert(tab, k2, []byte("b"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Different rows, same "page": still a conflict.
	if err := t2.Commit(); !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("same-page different-row commit err = %v", err)
	}
}

func TestShardedSinglePartitionOnePhase(t *testing.T) {
	db := NewSharded(2, ShardedLatency{})
	tab, _ := db.CreateTable("t")
	// Any single-partition transaction one-phases, local or remote.
	key := []byte("a")
	tx, _ := db.Begin(0)
	if err := tx.Insert(tab, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.OnePhaseCommits != 1 || db.TwoPhaseCommits != 0 {
		t.Fatalf("1pc=%d 2pc=%d", db.OnePhaseCommits, db.TwoPhaseCommits)
	}
}

func TestShardedCrossPartitionTwoPhase(t *testing.T) {
	db := NewSharded(2, ShardedLatency{})
	tab, _ := db.CreateTable("t")
	// Two keys on different partitions.
	k0, k1 := []byte("a"), []byte("b")
	for i := 0; db.partOf(k0) == db.partOf(k1) && i < 1000; i++ {
		k1 = append(k1, 'y')
	}
	tx, _ := db.Begin(0)
	if err := tx.Insert(tab, k0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tab, k1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.TwoPhaseCommits != 1 {
		t.Fatalf("2pc = %d", db.TwoPhaseCommits)
	}
	// Data landed on both partitions.
	tx2, _ := db.Begin(1)
	if _, err := tx2.Get(tab, k0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Get(tab, k1); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
}

func TestShardedRowLockConflict(t *testing.T) {
	db := NewSharded(2, ShardedLatency{})
	tab, _ := db.CreateTable("t")
	seed, _ := db.Begin(0)
	seed.Insert(tab, []byte("k"), []byte("v"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Begin(0)
	if err := t1.Update(tab, []byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	t2, _ := db.Begin(1)
	err := t2.Update(tab, []byte("k"), []byte("b"))
	if !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("lock conflict err = %v", err)
	}
	t2.Rollback()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Lock released after commit.
	t3, _ := db.Begin(1)
	if err := t3.Update(tab, []byte("k"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedGSICommitCosts(t *testing.T) {
	// With 4 GSIs nearly every insert becomes a multi-partition 2PC.
	db := NewSharded(4, DefaultShardedLatency())
	g := workload.DefaultGSI(4)
	g.PreloadRows = 40
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	res := workload.Runner{Threads: 1, Duration: 100 * time.Millisecond}.Run(db, g.TxFunc)
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if db.TwoPhaseCommits == 0 {
		t.Fatal("GSI inserts never used 2PC")
	}
}

func TestOCCUnderWorkloadRunner(t *testing.T) {
	db := NewOCCMM(2, OCCLatency{})
	sb := workload.DefaultSysbench(workload.SysbenchWriteOnly, 2, 100)
	sb.TablesPerGroup = 1
	sb.RowsPerTable = 50 // tiny: force page conflicts
	if err := sb.Load(db); err != nil {
		t.Fatal(err)
	}
	res := workload.Runner{Threads: 2, Duration: 150 * time.Millisecond, MaxRetries: 5}.Run(db, sb.TxFunc)
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if db.Conflicts == 0 {
		t.Fatal("fully-shared write-only workload produced no OCC conflicts")
	}
}

func TestShardedConcurrentStress(t *testing.T) {
	db := NewSharded(4, ShardedLatency{})
	tab, _ := db.CreateTable("t")
	var wg sync.WaitGroup
	var commits int64
	var mu sync.Mutex
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx, _ := db.Begin(n)
				key := []byte{byte('a' + n), byte(i), byte(i >> 8)}
				if err := tx.Insert(tab, key, []byte("v")); err != nil {
					tx.Rollback()
					continue
				}
				if tx.Commit() == nil {
					mu.Lock()
					commits++
					mu.Unlock()
				}
			}
		}(n)
	}
	wg.Wait()
	if commits != 400 {
		t.Fatalf("commits = %d, want 400", commits)
	}
}
