// Package baseline implements the comparison systems of §5.3 and §5.4 as
// behavioural models sharing this repository's workload and latency
// substrates (DESIGN.md substitution S7):
//
//   - OCCMM — Aurora-MM-like multi-master: shared storage, optimistic
//     concurrency control with page-granularity conflict detection; write
//     conflicts surface as retryable "deadlock errors" exactly as §2.3
//     describes.
//   - Sharded — shared-nothing 2PC (TiDB/CockroachDB/OceanBase-like):
//     hash-partitioned data and partitioned global secondary indexes;
//     cross-partition transactions pay two-phase commit.
//   - The Taurus-MM-like log-ship baseline is the real engine with
//     Config.StoragePageSync (page-store + log-replay synchronization).
package baseline

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/workload"
)

// occBuckets is the default page-conflict granularity: keys hash into
// buckets that stand in for data pages; two transactions writing the same
// bucket concurrently conflict even when their rows differ, which is
// precisely why Aurora-MM aborts under shared write traffic (§2.3).
// OCCMM.Buckets tunes it per run: real 16KB pages hold on the order of a
// hundred sysbench rows, so benchmarks set rows/bucket accordingly.
const occBuckets = 1024

// OCCLatency configures the OCC baseline's injected costs.
type OCCLatency struct {
	// StorageRead is a cache-miss fetch from the page store.
	StorageRead time.Duration
	// VersionCheck is the cheap validity probe for cached rows.
	VersionCheck time.Duration
	// CommitRound is the storage round trip validating and applying a
	// write set (Aurora's quorum write).
	CommitRound time.Duration
}

// DefaultOCCLatency mirrors the shared-storage cost model.
func DefaultOCCLatency() OCCLatency {
	return OCCLatency{
		StorageRead:  100 * time.Microsecond,
		VersionCheck: 3 * time.Microsecond,
		CommitRound:  120 * time.Microsecond,
	}
}

func lsleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// OCCMM is the Aurora-MM-like engine.
type OCCMM struct {
	nodes   int
	latency OCCLatency
	// Buckets is the per-table page-conflict granularity (default
	// occBuckets). Set before CreateTable.
	Buckets int

	mu     sync.Mutex
	tables map[string]*occTable

	// Conflicts counts commit-time aborts (the "deadlock errors").
	Conflicts int64
	// Commits counts successful commits.
	Commits int64

	caches []*occCache
}

type occTable struct {
	name string
	mu   sync.RWMutex
	rows map[string][]byte
	// ver is the per-bucket ("page") version used for conflict detection.
	ver []uint64
}

// occCache is one node's buffer cache: row values tagged with the bucket
// version they were read at.
type occCache struct {
	mu   sync.Mutex
	rows map[string]occCached
}

type occCached struct {
	val []byte
	ver uint64
}

// NewOCCMM builds an n-node Aurora-MM-like cluster.
func NewOCCMM(n int, latency OCCLatency) *OCCMM {
	o := &OCCMM{nodes: n, latency: latency, tables: make(map[string]*occTable)}
	for i := 0; i < n; i++ {
		o.caches = append(o.caches, &occCache{rows: make(map[string]occCached)})
	}
	return o
}

// NodeCount implements workload.DB.
func (o *OCCMM) NodeCount() int { return o.nodes }

// CreateTable implements workload.DB.
func (o *OCCMM) CreateTable(name string) (workload.Table, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t := o.tables[name]
	if t == nil {
		buckets := o.Buckets
		if buckets <= 0 {
			buckets = occBuckets
		}
		t = &occTable{name: name, rows: make(map[string][]byte), ver: make([]uint64, buckets)}
		o.tables[name] = t
	}
	return occTableRef{t}, nil
}

type occTableRef struct{ t *occTable }

// Space implements workload.Table (synthetic id; unused by this engine).
func (r occTableRef) Space() common.SpaceID { return 0 }

func bucketOf(key []byte, buckets int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(buckets))
}

// Begin implements workload.DB.
func (o *OCCMM) Begin(node int) (workload.Tx, error) {
	if node < 0 || node >= o.nodes {
		return nil, fmt.Errorf("occmm: node %d out of range", node)
	}
	return &occTx{db: o, node: node, writes: make(map[*occTable]map[string]occWrite)}, nil
}

type occWrite struct {
	val     []byte
	deleted bool
	baseVer uint64 // bucket version observed when the write was staged
	insert  bool
}

type occTx struct {
	db     *OCCMM
	node   int
	writes map[*occTable]map[string]occWrite
	done   bool
}

func (t *occTx) cacheKey(tab *occTable, key []byte) string {
	return tab.name + "\x00" + string(key)
}

// read fetches a row through the node's cache with version validation.
func (t *occTx) read(tab *occTable, key []byte) ([]byte, bool) {
	// Own staged write first.
	if w, ok := t.writes[tab][string(key)]; ok {
		if w.deleted {
			return nil, false
		}
		return w.val, true
	}
	cache := t.db.caches[t.node]
	b := bucketOf(key, len(tab.ver))
	ck := t.cacheKey(tab, key)

	cache.mu.Lock()
	cached, hit := cache.rows[ck]
	cache.mu.Unlock()

	lsleep(t.db.latency.VersionCheck)
	tab.mu.RLock()
	cur := tab.ver[b]
	tab.mu.RUnlock()
	if hit && cached.ver == cur {
		if cached.val == nil {
			return nil, false
		}
		return cached.val, true
	}
	// Miss or stale: storage fetch.
	lsleep(t.db.latency.StorageRead)
	tab.mu.RLock()
	val, ok := tab.rows[string(key)]
	ver := tab.ver[b]
	tab.mu.RUnlock()
	var cp []byte
	if ok {
		cp = append([]byte(nil), val...)
	}
	cache.mu.Lock()
	cache.rows[ck] = occCached{val: cp, ver: ver}
	cache.mu.Unlock()
	return cp, ok
}

func (t *occTx) stage(tab workload.Table, key []byte, val []byte, deleted, insert bool) error {
	if t.done {
		return common.ErrTxDone
	}
	ot := tab.(occTableRef).t
	m := t.writes[ot]
	if m == nil {
		m = make(map[string]occWrite)
		t.writes[ot] = m
	}
	b := bucketOf(key, len(ot.ver))
	ot.mu.RLock()
	base := ot.ver[b]
	ot.mu.RUnlock()
	var cp []byte
	if val != nil {
		cp = append([]byte(nil), val...)
	}
	m[string(key)] = occWrite{val: cp, deleted: deleted, baseVer: base, insert: insert}
	return nil
}

func (t *occTx) Get(tab workload.Table, key []byte) ([]byte, error) {
	if t.done {
		return nil, common.ErrTxDone
	}
	val, ok := t.read(tab.(occTableRef).t, key)
	if !ok {
		return nil, fmt.Errorf("occmm: %w", common.ErrNotFound)
	}
	return val, nil
}

// GetForUpdate has no locking under OCC; it is a plain read (the conflict is
// detected at commit).
func (t *occTx) GetForUpdate(tab workload.Table, key []byte) ([]byte, error) {
	val, err := t.Get(tab, key)
	if err != nil {
		return nil, err
	}
	// Stage an identity write so the bucket participates in validation,
	// approximating first-updater-wins on the page.
	if err := t.stage(tab, key, val, false, false); err != nil {
		return nil, err
	}
	return val, nil
}

func (t *occTx) Insert(tab workload.Table, key, value []byte) error {
	if _, ok := t.read(tab.(occTableRef).t, key); ok {
		return fmt.Errorf("occmm: %w", common.ErrKeyExists)
	}
	return t.stage(tab, key, value, false, true)
}

func (t *occTx) Update(tab workload.Table, key, value []byte) error {
	if _, ok := t.read(tab.(occTableRef).t, key); !ok {
		return fmt.Errorf("occmm: %w", common.ErrNotFound)
	}
	return t.stage(tab, key, value, false, false)
}

func (t *occTx) Delete(tab workload.Table, key []byte) error {
	if _, ok := t.read(tab.(occTableRef).t, key); !ok {
		return fmt.Errorf("occmm: %w", common.ErrNotFound)
	}
	return t.stage(tab, key, nil, true, false)
}

// Scan reads directly from storage (scans bypass the cache in this model).
func (t *occTx) Scan(tab workload.Table, from, to []byte, limit int) ([]workload.KV, error) {
	if t.done {
		return nil, common.ErrTxDone
	}
	lsleep(t.db.latency.StorageRead)
	ot := tab.(occTableRef).t
	ot.mu.RLock()
	defer ot.mu.RUnlock()
	var out []workload.KV
	for k, v := range ot.rows {
		if (from == nil || k >= string(from)) && (to == nil || k < string(to)) {
			out = append(out, workload.KV{Key: []byte(k), Value: append([]byte(nil), v...)})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// Commit validates the write set at page (bucket) granularity and applies
// it atomically; any bucket written by a concurrent committer since it was
// staged aborts the transaction with a retryable conflict, the "deadlock
// error" Aurora-MM reports to applications (§2.3).
func (t *occTx) Commit() error {
	if t.done {
		return common.ErrTxDone
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	lsleep(t.db.latency.CommitRound)

	// Validate & apply under a global order (tables sorted by name) so
	// validation itself cannot deadlock.
	var tabs []*occTable
	for tab := range t.writes {
		tabs = append(tabs, tab)
	}
	for i := 0; i < len(tabs); i++ {
		for j := i + 1; j < len(tabs); j++ {
			if tabs[j].name < tabs[i].name {
				tabs[i], tabs[j] = tabs[j], tabs[i]
			}
		}
	}
	for _, tab := range tabs {
		tab.mu.Lock()
	}
	defer func() {
		for i := len(tabs) - 1; i >= 0; i-- {
			tabs[i].mu.Unlock()
		}
	}()
	for _, tab := range tabs {
		for key, w := range t.writes[tab] {
			if tab.ver[bucketOf([]byte(key), len(tab.ver))] != w.baseVer {
				t.db.mu.Lock()
				t.db.Conflicts++
				t.db.mu.Unlock()
				return fmt.Errorf("occmm: page conflict: %w", common.ErrWriteConflict)
			}
		}
	}
	for _, tab := range tabs {
		for key, w := range t.writes[tab] {
			tab.ver[bucketOf([]byte(key), len(tab.ver))]++
			if w.deleted {
				delete(tab.rows, key)
			} else {
				tab.rows[key] = w.val
			}
		}
	}
	t.db.mu.Lock()
	t.db.Commits++
	t.db.mu.Unlock()
	return nil
}

func (t *occTx) Rollback() error {
	if t.done {
		return common.ErrTxDone
	}
	t.done = true
	return nil
}
