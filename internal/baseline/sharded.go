package baseline

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/workload"
)

// ShardedLatency configures the shared-nothing baseline's injected costs.
type ShardedLatency struct {
	// RPC is one cross-partition message (request or response leg pair).
	RPC time.Duration
	// LogSync is one participant's durable log force.
	LogSync time.Duration
}

// DefaultShardedLatency mirrors a fast datacenter network + log store.
func DefaultShardedLatency() ShardedLatency {
	return ShardedLatency{
		RPC:     60 * time.Microsecond,
		LogSync: 30 * time.Microsecond,
	}
}

// Sharded is the shared-nothing 2PC engine (§5.4): data hash-partitioned
// across nodes, per-partition 2PL row locks, one-phase commit for
// single-partition transactions and two-phase commit otherwise — including
// for every global secondary index update, which is the effect Figure 13
// measures.
type Sharded struct {
	nodes   int
	latency ShardedLatency

	mu     sync.Mutex
	tables map[string]*shardedTable

	// TwoPhaseCommits / OnePhaseCommits split the commit traffic.
	TwoPhaseCommits int64
	OnePhaseCommits int64
}

type shardedTable struct {
	name  string
	parts []*partition
}

type partition struct {
	mu    sync.Mutex
	rows  map[string][]byte
	locks map[string]uint64 // key -> owning tx id
}

// NewSharded builds an n-node shared-nothing cluster.
func NewSharded(n int, latency ShardedLatency) *Sharded {
	return &Sharded{nodes: n, latency: latency, tables: make(map[string]*shardedTable)}
}

// NodeCount implements workload.DB.
func (s *Sharded) NodeCount() int { return s.nodes }

// CreateTable implements workload.DB; each table (including each secondary
// index, which callers model as its own table) is partitioned over all
// nodes.
func (s *Sharded) CreateTable(name string) (workload.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[name]
	if t == nil {
		t = &shardedTable{name: name}
		for i := 0; i < s.nodes; i++ {
			t.parts = append(t.parts, &partition{
				rows:  make(map[string][]byte),
				locks: make(map[string]uint64),
			})
		}
		s.tables[name] = t
	}
	return shardedRef{t}, nil
}

type shardedRef struct{ t *shardedTable }

// Space implements workload.Table (synthetic; unused by this engine).
func (r shardedRef) Space() common.SpaceID { return 0 }

func (s *Sharded) partOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % s.nodes
}

var shardedTxSeq uint64
var shardedTxSeqMu sync.Mutex

func nextShardedTx() uint64 {
	shardedTxSeqMu.Lock()
	defer shardedTxSeqMu.Unlock()
	shardedTxSeq++
	return shardedTxSeq
}

// Begin implements workload.DB; node is the coordinator.
func (s *Sharded) Begin(node int) (workload.Tx, error) {
	if node < 0 || node >= s.nodes {
		return nil, fmt.Errorf("sharded: node %d out of range", node)
	}
	return &shardedTx{
		db:     s,
		node:   node,
		id:     nextShardedTx(),
		writes: make(map[*shardedTable]map[string]shardedWrite),
		locked: make(map[lockKey]bool),
	}, nil
}

type shardedWrite struct {
	val     []byte
	deleted bool
	insert  bool
}

type lockKey struct {
	t   *shardedTable
	p   int
	key string
}

type shardedTx struct {
	db     *Sharded
	node   int
	id     uint64
	writes map[*shardedTable]map[string]shardedWrite
	locked map[lockKey]bool
	done   bool
}

// chargeHop charges a cross-partition RPC when the partition is remote.
func (t *shardedTx) chargeHop(part int) {
	if part != t.node {
		lsleep(t.db.latency.RPC)
	}
}

// lockRow acquires the row lock at the owning partition (execution-time 2PL
// with no-wait: a held lock aborts the requester, the common distributed-
// deadlock avoidance policy).
func (t *shardedTx) lockRow(tab *shardedTable, part int, key string) error {
	lk := lockKey{tab, part, key}
	if t.locked[lk] {
		return nil
	}
	p := tab.parts[part]
	p.mu.Lock()
	owner, held := p.locks[key]
	if held && owner != t.id {
		p.mu.Unlock()
		return fmt.Errorf("sharded: row locked: %w", common.ErrWriteConflict)
	}
	p.locks[key] = t.id
	p.mu.Unlock()
	t.locked[lk] = true
	return nil
}

func (t *shardedTx) Get(tab workload.Table, key []byte) ([]byte, error) {
	if t.done {
		return nil, common.ErrTxDone
	}
	st := tab.(shardedRef).t
	part := t.db.partOf(key)
	t.chargeHop(part)
	if w, ok := t.writes[st][string(key)]; ok {
		if w.deleted {
			return nil, fmt.Errorf("sharded: %w", common.ErrNotFound)
		}
		return w.val, nil
	}
	p := st.parts[part]
	p.mu.Lock()
	v, ok := p.rows[string(key)]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sharded: %w", common.ErrNotFound)
	}
	return append([]byte(nil), v...), nil
}

func (t *shardedTx) GetForUpdate(tab workload.Table, key []byte) ([]byte, error) {
	st := tab.(shardedRef).t
	part := t.db.partOf(key)
	t.chargeHop(part)
	if err := t.lockRow(st, part, string(key)); err != nil {
		return nil, err
	}
	return t.Get(tab, key)
}

func (t *shardedTx) stage(tab workload.Table, key, val []byte, deleted, insert bool) error {
	if t.done {
		return common.ErrTxDone
	}
	st := tab.(shardedRef).t
	part := t.db.partOf(key)
	t.chargeHop(part)
	if err := t.lockRow(st, part, string(key)); err != nil {
		return err
	}
	m := t.writes[st]
	if m == nil {
		m = make(map[string]shardedWrite)
		t.writes[st] = m
	}
	var cp []byte
	if val != nil {
		cp = append([]byte(nil), val...)
	}
	m[string(key)] = shardedWrite{val: cp, deleted: deleted, insert: insert}
	return nil
}

func (t *shardedTx) exists(tab workload.Table, key []byte) bool {
	_, err := t.Get(tab, key)
	return err == nil
}

func (t *shardedTx) Insert(tab workload.Table, key, value []byte) error {
	if t.exists(tab, key) {
		return fmt.Errorf("sharded: %w", common.ErrKeyExists)
	}
	return t.stage(tab, key, value, false, true)
}

func (t *shardedTx) Update(tab workload.Table, key, value []byte) error {
	if !t.exists(tab, key) {
		return fmt.Errorf("sharded: %w", common.ErrNotFound)
	}
	return t.stage(tab, key, value, false, false)
}

func (t *shardedTx) Delete(tab workload.Table, key []byte) error {
	if !t.exists(tab, key) {
		return fmt.Errorf("sharded: %w", common.ErrNotFound)
	}
	return t.stage(tab, key, nil, true, false)
}

// Scan gathers from every partition (scatter-gather).
func (t *shardedTx) Scan(tab workload.Table, from, to []byte, limit int) ([]workload.KV, error) {
	if t.done {
		return nil, common.ErrTxDone
	}
	st := tab.(shardedRef).t
	var out []workload.KV
	for i, p := range st.parts {
		t.chargeHop(i)
		p.mu.Lock()
		for k, v := range p.rows {
			if (from == nil || k >= string(from)) && (to == nil || k < string(to)) {
				out = append(out, workload.KV{Key: []byte(k), Value: append([]byte(nil), v...)})
			}
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i].Key) < string(out[j].Key) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Commit applies the staged writes: single-participant local transactions
// commit with one log force; anything else runs two-phase commit with a
// prepare round (RPC + log force per participant) and a commit round.
func (t *shardedTx) Commit() error {
	if t.done {
		return common.ErrTxDone
	}
	t.done = true
	defer t.unlockAll()
	if len(t.writes) == 0 {
		return nil
	}
	// Which partitions participate?
	parts := map[int]bool{}
	for st, m := range t.writes {
		_ = st
		for key := range m {
			parts[t.db.partOf([]byte(key))] = true
		}
	}
	if len(parts) == 1 {
		// One-phase commit: a single participant commits with one log
		// force (plus the routing hop if it is remote), the standard
		// single-shard optimization every sharded system implements.
		for p := range parts {
			t.chargeHop(p)
		}
		lsleep(t.db.latency.LogSync)
		t.apply()
		t.db.mu.Lock()
		t.db.OnePhaseCommits++
		t.db.mu.Unlock()
		return nil
	}
	// Two-phase commit: prepare round (parallel in real systems; charge
	// one RPC + the slowest participant's log force per round, plus a
	// per-extra-participant overhead for message fan-out).
	n := len(parts)
	lsleep(t.db.latency.RPC + t.db.latency.LogSync) // prepare round
	lsleep(time.Duration(n-1) * t.db.latency.RPC / 2)
	lsleep(t.db.latency.LogSync)                    // coordinator decision record
	lsleep(t.db.latency.RPC + t.db.latency.LogSync) // commit round
	t.apply()
	t.db.mu.Lock()
	t.db.TwoPhaseCommits++
	t.db.mu.Unlock()
	return nil
}

func (t *shardedTx) apply() {
	for st, m := range t.writes {
		for key, w := range m {
			p := st.parts[t.db.partOf([]byte(key))]
			p.mu.Lock()
			if w.deleted {
				delete(p.rows, key)
			} else {
				p.rows[key] = w.val
			}
			p.mu.Unlock()
		}
	}
}

func (t *shardedTx) unlockAll() {
	for lk := range t.locked {
		p := lk.t.parts[lk.p]
		p.mu.Lock()
		if p.locks[lk.key] == t.id {
			delete(p.locks, lk.key)
		}
		p.mu.Unlock()
	}
}

func (t *shardedTx) Rollback() error {
	if t.done {
		return common.ErrTxDone
	}
	t.done = true
	t.unlockAll()
	return nil
}
