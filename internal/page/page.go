// Package page implements the structured data page shared by the buffer
// pools, the B-tree, the redo log and the storage layer.
//
// Per §4.1 each row carries two extra metadata fields — the global id of the
// transaction that last modified it (g_trx_id) and that transaction's commit
// timestamp (CTS), stamped lazily at commit time. The row's g_trx_id doubles
// as the RLock indicator (§4.3.2). Old row versions are kept in an in-page
// chain (DESIGN.md substitution S3) so that any node holding the page under
// an S PLock can reconstruct a visible version, exactly as the paper's
// undo-based reconstruction does.
//
// The page header carries the LLSN of the last redo record applied to the
// page (§4.4), which both orders cross-node redo and makes replay idempotent
// (apply record iff record.LLSN > page.LLSN).
package page

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"polardbmp/internal/common"
)

// FrameSize is the buffer-pool frame size; a marshaled page must fit in it.
const FrameSize = 16 * 1024

// Type discriminates page roles.
type Type uint8

const (
	// TypeLeaf holds user rows (or index entries for secondary indexes).
	TypeLeaf Type = iota + 1
	// TypeInternal holds separator-key → child-page routing entries.
	TypeInternal
)

// Version is one version of a row. The newest version is Versions[0].
type Version struct {
	// Trx is the global id of the transaction that wrote this version.
	// For the newest version of a row it doubles as the row lock field:
	// if the transaction is still active, the row is X-locked (§4.3.2).
	Trx common.GTrxID
	// CTS is the writer's commit timestamp, or CSNInit if it was not
	// stamped (writer still active, or the row left the buffer before
	// commit); readers then resolve it through the TIT (Algorithm 1).
	CTS common.CSN
	// Deleted marks a tombstone version.
	Deleted bool
	// Value is the row payload (nil for tombstones).
	Value []byte
}

// Row is a keyed row with its version chain, newest first.
type Row struct {
	Key      []byte
	Versions []Version
}

// Head returns the newest version. Rows always have at least one version.
func (r *Row) Head() *Version { return &r.Versions[0] }

// Page is the in-memory form of a data page. Synchronization (PLocks across
// nodes, latches within a node) is layered above this package.
type Page struct {
	ID    common.PageID
	Space common.SpaceID
	Type  Type
	// Level is the page's height in the B-tree: 0 for leaves, 1 for
	// internal pages whose children are leaves, and so on. Descent uses
	// it to acquire the leaf-level PLock in the right mode on first try.
	Level uint8
	// LLSN of the last redo record applied to this page (§4.4).
	LLSN common.LLSN
	// Next is the right sibling for leaf pages (leaf chain for scans).
	Next common.PageID
	Rows []Row
}

// New creates an empty page.
func New(id common.PageID, space common.SpaceID, t Type) *Page {
	return &Page{ID: id, Space: space, Type: t}
}

// Search returns the index of key and whether it was found; if not found,
// the index is the insertion point.
func (p *Page) Search(key []byte) (int, bool) {
	i := sort.Search(len(p.Rows), func(i int) bool {
		return bytes.Compare(p.Rows[i].Key, key) >= 0
	})
	if i < len(p.Rows) && bytes.Equal(p.Rows[i].Key, key) {
		return i, true
	}
	return i, false
}

// Find returns the row for key, or nil.
func (p *Page) Find(key []byte) *Row {
	if i, ok := p.Search(key); ok {
		return &p.Rows[i]
	}
	return nil
}

// InsertVersion prepends a new version for key, creating the row if absent.
// It is the single mutation primitive used by insert, update and delete
// (delete writes a tombstone version). The caller owns redo logging and
// LLSN stamping.
func (p *Page) InsertVersion(key []byte, v Version) {
	i, ok := p.Search(key)
	if ok {
		r := &p.Rows[i]
		r.Versions = append([]Version{v}, r.Versions...)
		return
	}
	row := Row{Key: append([]byte(nil), key...), Versions: []Version{v}}
	p.Rows = append(p.Rows, Row{})
	copy(p.Rows[i+1:], p.Rows[i:])
	p.Rows[i] = row
}

// RollbackVersion removes the newest version of key if it was written by
// trx, exposing the previous version; if no previous version remains the row
// is removed entirely. It reports whether a version was rolled back.
func (p *Page) RollbackVersion(key []byte, trx common.GTrxID) bool {
	i, ok := p.Search(key)
	if !ok {
		return false
	}
	r := &p.Rows[i]
	if r.Head().Trx != trx {
		return false
	}
	if len(r.Versions) == 1 {
		p.Rows = append(p.Rows[:i], p.Rows[i+1:]...)
		return true
	}
	r.Versions = r.Versions[1:]
	return true
}

// StampCTS fills the CTS of every version on the page written by trx that
// is still unstamped. It returns the number of versions stamped. This is the
// commit-time fast path of §4.1: rows still in the buffer get their CTS
// filled so readers skip the TIT lookup.
func (p *Page) StampCTS(trx common.GTrxID, cts common.CSN) int {
	n := 0
	for ri := range p.Rows {
		for vi := range p.Rows[ri].Versions {
			v := &p.Rows[ri].Versions[vi]
			if v.Trx == trx && v.CTS == common.CSNInit {
				v.CTS = cts
				n++
			}
		}
	}
	return n
}

// Purge trims version chains: every version strictly older than the first
// version committed at or below minView is unreachable by any active or
// future snapshot and is dropped. Rows whose only remaining version is a
// purgeable tombstone are removed. resolve maps a version to its effective
// CTS (CSNMax while the writer is active).
func (p *Page) Purge(minView common.CSN, resolve func(*Version) common.CSN) int {
	removed := 0
	out := p.Rows[:0]
	for ri := range p.Rows {
		r := &p.Rows[ri]
		keep := len(r.Versions)
		for vi := range r.Versions {
			if resolve(&r.Versions[vi]) <= minView {
				// Versions[vi] is visible to every snapshot;
				// everything older is unreachable.
				keep = vi + 1
				break
			}
		}
		removed += len(r.Versions) - keep
		r.Versions = r.Versions[:keep]
		// Drop the row if it has collapsed to a single tombstone that
		// everyone can see.
		if len(r.Versions) == 1 && r.Versions[0].Deleted &&
			resolve(&r.Versions[0]) <= minView {
			removed++
			continue
		}
		out = append(out, *r)
	}
	p.Rows = out
	return removed
}

// --- internal (routing) pages -----------------------------------------

// ChildEntry reads an internal-page entry's child pointer.
func ChildEntry(v *Version) common.PageID {
	if len(v.Value) < 8 {
		return common.InvalidPageID
	}
	return common.PageID(binary.LittleEndian.Uint64(v.Value))
}

// ChildValue encodes a child pointer as an entry value.
func ChildValue(id common.PageID) []byte {
	return binary.LittleEndian.AppendUint64(nil, uint64(id))
}

// ChildFor returns the child page that owns key on an internal page: the
// entry with the greatest key <= key. Internal pages always carry a first
// entry with an empty key (-infinity).
func (p *Page) ChildFor(key []byte) common.PageID {
	i := sort.Search(len(p.Rows), func(i int) bool {
		return bytes.Compare(p.Rows[i].Key, key) > 0
	})
	if i == 0 {
		return common.InvalidPageID
	}
	return ChildEntry(p.Rows[i-1].Head())
}

// SetChild inserts or replaces the routing entry key→child.
func (p *Page) SetChild(key []byte, child common.PageID) {
	v := Version{Value: ChildValue(child)}
	if i, ok := p.Search(key); ok {
		p.Rows[i].Versions = []Version{v}
		return
	}
	p.InsertVersion(key, v)
}

// DeleteEntry removes the routing entry for key. It reports whether the
// entry existed.
func (p *Page) DeleteEntry(key []byte) bool {
	i, ok := p.Search(key)
	if !ok {
		return false
	}
	p.Rows = append(p.Rows[:i], p.Rows[i+1:]...)
	return true
}

// --- size accounting ----------------------------------------------------

const (
	headerSize  = 4 + 8 + 4 + 1 + 1 + 8 + 8 + 4 // crc, id, space, type, level, llsn, next, nrows
	rowOverhead = 4 + 4                         // key len, nversions
	verOverhead = common.GTrxIDSize + 8 + 1 + 4
	// SplitThreshold is the marshaled size beyond which the B-tree splits
	// a page; it leaves headroom under FrameSize for version-chain growth.
	SplitThreshold = FrameSize * 3 / 4
)

// SizeEstimate returns the marshaled size of the page in bytes.
func (p *Page) SizeEstimate() int {
	n := headerSize
	for i := range p.Rows {
		n += rowOverhead + len(p.Rows[i].Key)
		for j := range p.Rows[i].Versions {
			n += verOverhead + len(p.Rows[i].Versions[j].Value)
		}
	}
	return n
}

// --- marshal / unmarshal --------------------------------------------------

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Marshal serializes the page (checksummed). It returns an error if the
// page exceeds FrameSize, which indicates a missed split or runaway version
// chain — a bug in the layers above.
func (p *Page) Marshal() ([]byte, error) {
	return p.AppendTo(make([]byte, 0, 4+p.SizeEstimate()))
}

// AppendTo serializes the page (checksummed) onto b and returns the
// extended slice; the image occupies b[len(b):] of the input. Callers with
// a reusable buffer avoid Marshal's per-call allocation.
func (p *Page) AppendTo(b []byte) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // reserved for crc
	b = binary.LittleEndian.AppendUint64(b, uint64(p.ID))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Space))
	b = append(b, byte(p.Type))
	b = append(b, p.Level)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.LLSN))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Next))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Rows)))
	for i := range p.Rows {
		r := &p.Rows[i]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Key)))
		b = append(b, r.Key...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Versions)))
		for j := range r.Versions {
			v := &r.Versions[j]
			b = v.Trx.Marshal(b)
			b = binary.LittleEndian.AppendUint64(b, uint64(v.CTS))
			if v.Deleted {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(len(v.Value)))
			b = append(b, v.Value...)
		}
	}
	if len(b)-start > FrameSize {
		return nil, fmt.Errorf("page %d: marshaled size %d exceeds frame size %d",
			p.ID, len(b)-start, FrameSize)
	}
	binary.LittleEndian.PutUint32(b[start:], crc32.Checksum(b[start+4:], crcTable))
	return b, nil
}

// Unmarshal parses a page image produced by Marshal, verifying the checksum.
func Unmarshal(b []byte) (*Page, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("page image of %d bytes: %w", len(b), common.ErrShortBuffer)
	}
	if crc32.Checksum(b[4:], crcTable) != binary.LittleEndian.Uint32(b) {
		return nil, fmt.Errorf("page checksum mismatch: %w", common.ErrCorrupt)
	}
	p := &Page{}
	rd := b[4:]
	p.ID = common.PageID(binary.LittleEndian.Uint64(rd))
	p.Space = common.SpaceID(binary.LittleEndian.Uint32(rd[8:]))
	p.Type = Type(rd[12])
	p.Level = rd[13]
	p.LLSN = common.LLSN(binary.LittleEndian.Uint64(rd[14:]))
	p.Next = common.PageID(binary.LittleEndian.Uint64(rd[22:]))
	nRows := int(binary.LittleEndian.Uint32(rd[30:]))
	rd = rd[34:]
	p.Rows = make([]Row, 0, nRows)
	for r := 0; r < nRows; r++ {
		var row Row
		var err error
		if row.Key, rd, err = readBytes(rd); err != nil {
			return nil, err
		}
		if len(rd) < 4 {
			return nil, common.ErrShortBuffer
		}
		nVers := int(binary.LittleEndian.Uint32(rd))
		rd = rd[4:]
		row.Versions = make([]Version, 0, nVers)
		for v := 0; v < nVers; v++ {
			var ver Version
			if ver.Trx, rd, err = common.UnmarshalGTrxID(rd); err != nil {
				return nil, err
			}
			if len(rd) < 9 {
				return nil, common.ErrShortBuffer
			}
			ver.CTS = common.CSN(binary.LittleEndian.Uint64(rd))
			ver.Deleted = rd[8] == 1
			rd = rd[9:]
			if ver.Value, rd, err = readBytes(rd); err != nil {
				return nil, err
			}
			row.Versions = append(row.Versions, ver)
		}
		p.Rows = append(p.Rows, row)
	}
	return p, nil
}

func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, b, common.ErrShortBuffer
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, b, common.ErrShortBuffer
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out, b[n:], nil
}

// Clone deep-copies the page.
func (p *Page) Clone() *Page {
	cp := &Page{ID: p.ID, Space: p.Space, Type: p.Type, Level: p.Level, LLSN: p.LLSN, Next: p.Next}
	cp.Rows = make([]Row, len(p.Rows))
	for i := range p.Rows {
		cp.Rows[i].Key = append([]byte(nil), p.Rows[i].Key...)
		cp.Rows[i].Versions = make([]Version, len(p.Rows[i].Versions))
		for j := range p.Rows[i].Versions {
			v := p.Rows[i].Versions[j]
			v.Value = append([]byte(nil), v.Value...)
			cp.Rows[i].Versions[j] = v
		}
	}
	return cp
}
