package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"polardbmp/internal/common"
)

func trx(n, t int) common.GTrxID {
	return common.GTrxID{Node: common.NodeID(n), Trx: common.TrxID(t), Slot: uint32(t), Version: 1}
}

func TestInsertVersionOrdering(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	keys := []string{"m", "a", "z", "c", "q"}
	for i, k := range keys {
		p.InsertVersion([]byte(k), Version{Trx: trx(1, i), Value: []byte(k + "v")})
	}
	if len(p.Rows) != 5 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	for i := 1; i < len(p.Rows); i++ {
		if bytes.Compare(p.Rows[i-1].Key, p.Rows[i].Key) >= 0 {
			t.Fatalf("rows out of order at %d", i)
		}
	}
	r := p.Find([]byte("q"))
	if r == nil || string(r.Head().Value) != "qv" {
		t.Fatalf("find q = %v", r)
	}
}

func TestVersionChain(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	k := []byte("key")
	p.InsertVersion(k, Version{Trx: trx(1, 1), Value: []byte("v1"), CTS: 10})
	p.InsertVersion(k, Version{Trx: trx(2, 2), Value: []byte("v2"), CTS: 20})
	p.InsertVersion(k, Version{Trx: trx(1, 3), Value: []byte("v3")})
	r := p.Find(k)
	if len(r.Versions) != 3 {
		t.Fatalf("chain length = %d", len(r.Versions))
	}
	if string(r.Versions[0].Value) != "v3" || string(r.Versions[2].Value) != "v1" {
		t.Fatal("chain not newest-first")
	}
}

func TestRollbackVersion(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	k := []byte("key")
	p.InsertVersion(k, Version{Trx: trx(1, 1), Value: []byte("v1"), CTS: 10})
	p.InsertVersion(k, Version{Trx: trx(1, 2), Value: []byte("v2")})
	if !p.RollbackVersion(k, trx(1, 2)) {
		t.Fatal("rollback of own head failed")
	}
	if got := string(p.Find(k).Head().Value); got != "v1" {
		t.Fatalf("after rollback head = %q", got)
	}
	// Rolling back a version we don't own is refused.
	if p.RollbackVersion(k, trx(9, 9)) {
		t.Fatal("rollback of foreign head succeeded")
	}
	// Rolling back the only version removes the row.
	if !p.RollbackVersion(k, trx(1, 1)) {
		t.Fatal("rollback of sole version failed")
	}
	if p.Find(k) != nil {
		t.Fatal("row not removed")
	}
	// Rollback of a missing key is a no-op.
	if p.RollbackVersion([]byte("ghost"), trx(1, 1)) {
		t.Fatal("rollback of missing key succeeded")
	}
}

func TestStampCTS(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	who := trx(1, 7)
	p.InsertVersion([]byte("a"), Version{Trx: who})
	p.InsertVersion([]byte("b"), Version{Trx: who})
	p.InsertVersion([]byte("c"), Version{Trx: trx(2, 8)})
	if n := p.StampCTS(who, 55); n != 2 {
		t.Fatalf("stamped %d, want 2", n)
	}
	if p.Find([]byte("a")).Head().CTS != 55 || p.Find([]byte("b")).Head().CTS != 55 {
		t.Fatal("CTS not stamped")
	}
	if p.Find([]byte("c")).Head().CTS != common.CSNInit {
		t.Fatal("foreign version stamped")
	}
	// Already-stamped versions are not re-stamped.
	if n := p.StampCTS(who, 66); n != 0 {
		t.Fatalf("re-stamp count = %d", n)
	}
}

func resolvePlain(v *Version) common.CSN {
	if v.CTS == common.CSNInit {
		return common.CSNMax
	}
	return v.CTS
}

func TestPurge(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	k := []byte("key")
	p.InsertVersion(k, Version{Trx: trx(1, 1), Value: []byte("v1"), CTS: 10})
	p.InsertVersion(k, Version{Trx: trx(1, 2), Value: []byte("v2"), CTS: 20})
	p.InsertVersion(k, Version{Trx: trx(1, 3), Value: []byte("v3"), CTS: 30})
	// minView 20: v2 visible to all snapshots >= 20, so v1 is unreachable.
	if n := p.Purge(20, resolvePlain); n != 1 {
		t.Fatalf("purged %d, want 1", n)
	}
	r := p.Find(k)
	if len(r.Versions) != 2 || string(r.Versions[1].Value) != "v2" {
		t.Fatalf("chain after purge: %v", r.Versions)
	}
	// minView 100: only v3 reachable.
	p.Purge(100, resolvePlain)
	if len(p.Find(k).Versions) != 1 {
		t.Fatal("purge to single version failed")
	}
}

func TestPurgeTombstone(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	k := []byte("key")
	p.InsertVersion(k, Version{Trx: trx(1, 1), Value: []byte("v1"), CTS: 10})
	p.InsertVersion(k, Version{Trx: trx(1, 2), Deleted: true, CTS: 20})
	p.Purge(50, resolvePlain)
	if p.Find(k) != nil {
		t.Fatal("fully-visible tombstone row should be removed")
	}
}

func TestPurgeKeepsActive(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	k := []byte("key")
	p.InsertVersion(k, Version{Trx: trx(1, 1), Value: []byte("v1"), CTS: 10})
	p.InsertVersion(k, Version{Trx: trx(1, 2), Value: []byte("v2")}) // active
	p.Purge(50, resolvePlain)
	r := p.Find(k)
	if len(r.Versions) != 2 {
		t.Fatalf("active chain purged: %d versions left", len(r.Versions))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := New(7, 3, TypeLeaf)
	p.LLSN = 99
	p.Next = 8
	p.InsertVersion([]byte("alpha"), Version{Trx: trx(1, 1), CTS: 5, Value: []byte("one")})
	p.InsertVersion([]byte("beta"), Version{Trx: trx(2, 2), Deleted: true})
	p.InsertVersion([]byte("alpha"), Version{Trx: trx(1, 3), Value: []byte("two")})
	img, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 7 || q.Space != 3 || q.Type != TypeLeaf || q.LLSN != 99 || q.Next != 8 {
		t.Fatalf("header mismatch: %+v", q)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("rows = %d", len(q.Rows))
	}
	r := q.Find([]byte("alpha"))
	if len(r.Versions) != 2 || string(r.Versions[0].Value) != "two" {
		t.Fatalf("alpha chain = %v", r.Versions)
	}
	if !q.Find([]byte("beta")).Head().Deleted {
		t.Fatal("tombstone lost")
	}
}

func TestMarshalChecksum(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	p.InsertVersion([]byte("k"), Version{Trx: trx(1, 1), Value: []byte("v")})
	img, _ := p.Marshal()
	img[len(img)-1] ^= 0xFF
	if _, err := Unmarshal(img); err == nil {
		t.Fatal("corrupted image unmarshaled without error")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(common.PageID(rng.Uint64()%1e6+1), common.SpaceID(rng.Uint32()%100), TypeLeaf)
		p.LLSN = common.LLSN(rng.Uint64() % 1e9)
		for i := 0; i < int(n%40); i++ {
			key := []byte(fmt.Sprintf("key-%d", rng.Intn(30)))
			val := make([]byte, rng.Intn(50))
			rng.Read(val)
			p.InsertVersion(key, Version{
				Trx:     trx(rng.Intn(4), rng.Intn(1000)),
				CTS:     common.CSN(rng.Uint64() % 1000),
				Deleted: rng.Intn(5) == 0,
				Value:   val,
			})
		}
		img, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(img)
		if err != nil || len(q.Rows) != len(p.Rows) {
			return false
		}
		for i := range p.Rows {
			if !bytes.Equal(p.Rows[i].Key, q.Rows[i].Key) ||
				len(p.Rows[i].Versions) != len(q.Rows[i].Versions) {
				return false
			}
			for j := range p.Rows[i].Versions {
				a, b := p.Rows[i].Versions[j], q.Rows[i].Versions[j]
				if a.Trx != b.Trx || a.CTS != b.CTS || a.Deleted != b.Deleted ||
					!bytes.Equal(a.Value, b.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeEstimateMatchesMarshal(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	for i := 0; i < 50; i++ {
		p.InsertVersion([]byte(fmt.Sprintf("key-%03d", i)),
			Version{Trx: trx(1, i), Value: bytes.Repeat([]byte("x"), i)})
	}
	img, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if est := p.SizeEstimate(); est != len(img) {
		t.Fatalf("estimate %d != marshaled %d", est, len(img))
	}
}

func TestMarshalOversize(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	p.InsertVersion([]byte("k"), Version{Value: bytes.Repeat([]byte("x"), FrameSize)})
	if _, err := p.Marshal(); err == nil {
		t.Fatal("oversize page marshaled without error")
	}
}

func TestInternalPageRouting(t *testing.T) {
	p := New(1, 1, TypeInternal)
	p.SetChild(nil, 10)         // -inf
	p.SetChild([]byte("m"), 20) // [m, t)
	p.SetChild([]byte("t"), 30) // [t, ∞)
	cases := []struct {
		key   string
		child common.PageID
	}{
		{"", 10}, {"a", 10}, {"lzz", 10}, {"m", 20}, {"p", 20}, {"t", 30}, {"zzz", 30},
	}
	for _, c := range cases {
		if got := p.ChildFor([]byte(c.key)); got != c.child {
			t.Errorf("ChildFor(%q) = %d, want %d", c.key, got, c.child)
		}
	}
	// Replace a child pointer.
	p.SetChild([]byte("m"), 25)
	if p.ChildFor([]byte("p")) != 25 {
		t.Fatal("SetChild replace failed")
	}
	if !p.DeleteEntry([]byte("t")) {
		t.Fatal("DeleteEntry failed")
	}
	if p.ChildFor([]byte("zzz")) != 25 {
		t.Fatal("routing after delete wrong")
	}
}

func TestClone(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	p.InsertVersion([]byte("k"), Version{Trx: trx(1, 1), Value: []byte("v")})
	q := p.Clone()
	q.Rows[0].Versions[0].Value[0] = 'X'
	q.InsertVersion([]byte("z"), Version{})
	if string(p.Find([]byte("k")).Head().Value) != "v" || len(p.Rows) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestSearchProperty(t *testing.T) {
	p := New(1, 1, TypeLeaf)
	var keys []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%04d", rand.Intn(500))
		p.InsertVersion([]byte(k), Version{Trx: trx(1, i)})
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if p.Find([]byte(k)) == nil {
			t.Fatalf("inserted key %q not found", k)
		}
	}
	// Rows must be strictly sorted and deduplicated.
	for i := 1; i < len(p.Rows); i++ {
		if bytes.Compare(p.Rows[i-1].Key, p.Rows[i].Key) >= 0 {
			t.Fatal("rows not strictly sorted")
		}
	}
}
