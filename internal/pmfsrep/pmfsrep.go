package pmfsrep

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
)

// errFailover is the typed-transient error verbs see while a replica
// failover holds the tier: common.Retry absorbs it like any other transient
// fabric fault, so in-flight transactions ride out the promotion.
var errFailover = fmt.Errorf("pmfsrep: replica failover in progress: %w", common.ErrUnreachable)

// Observer receives the replication tax of one PMFS-bound verb: the time
// spent mirroring it and collecting the quorum, attributed to the issuing
// node (trace.StagePmfsReplicate).
type Observer func(src common.NodeID, quorum time.Duration)

// regionInfo describes one replicated region.
type regionInfo struct {
	size       int
	quorumRead bool // quorum-verify + read-repair on one-sided reads
}

// replica is one copy of the PMFS tier. The current leader's copy is the
// real fabric regions (m == nil); followers hold sparse mirrors.
type replica struct {
	id     int
	fenced bool // guarded by Replicator.mu (writes under Lock)
	m      *mirror
}

// Replicator mirrors the PMFS shared-memory regions across K replicas. It
// implements rdma.Transport and is attached as the fabric route for the
// PMFS node, so every verb from every node — in-process or over the socket
// fabric — funnels through it: the leader copy executes the verb with
// unchanged accounting, then the record fans out to the follower mirrors
// in-process (the acks ride the same doorbell batch — no extra fabric ops,
// which is what keeps the CI-pinned commit budget intact with K=3).
type Replicator struct {
	inner rdma.Transport // the fabric's in-process transport (no recursion)
	node  common.NodeID  // the PMFS node id this replicator fronts
	k     int
	need  int // quorum: majority of k

	regions  map[string]regionInfo // immutable after Attach
	attached atomic.Bool

	mu       sync.RWMutex // verbs hold RLock; failover holds Lock
	gate     atomic.Bool  // set while a failover drains in-flight verbs
	replicas []*replica
	leader   int

	epoch atomic.Uint64 // pmfs replication epoch; CAS-advanced on failover
	seq   atomic.Uint64 // global record sequence — the version-word source
	track *seqTrack

	obs        atomic.Pointer[Observer]
	onFailover []func(epoch uint64) // set before Attach; run under mu

	encPool sync.Pool

	grants         metrics.Counter
	mirroredWrites metrics.Counter
	mirroredBytes  metrics.Counter
	readRepairs    metrics.Counter
	dupSuppressed  metrics.Counter
	degradedOps    metrics.Counter
	failovers      metrics.Counter
	quorumLat      metrics.Histogram
}

// New builds a K-way replicator fronting node on f. K must be at least 2;
// replica 0 starts as the leader. Register regions with AddRegion, then
// Attach to interpose on the fabric route.
func New(f *rdma.Fabric, node common.NodeID, k int) *Replicator {
	if k < 2 {
		panic("pmfsrep: need at least 2 replicas")
	}
	r := &Replicator{
		inner:   f.LocalTransport(),
		node:    node,
		k:       k,
		need:    k/2 + 1,
		regions: make(map[string]regionInfo),
		track:   newSeqTrack(),
	}
	r.encPool.New = func() any { b := make([]byte, 0, 4096); return &b }
	r.epoch.Store(1)
	for i := 0; i < k; i++ {
		rep := &replica{id: i}
		if i != 0 {
			rep.m = newMirror()
		}
		r.replicas = append(r.replicas, rep)
	}
	return r
}

// AddRegion declares one replicated region. Verbs on undeclared regions
// pass through unreplicated. quorumRead regions (the membership lease
// table) additionally verify follower version words on every one-sided
// read, repairing divergence from the leader copy.
func (r *Replicator) AddRegion(name string, size int, quorumRead bool) {
	if r.attached.Load() {
		panic("pmfsrep: AddRegion after Attach")
	}
	r.regions[name] = regionInfo{size: size, quorumRead: quorumRead}
}

// OnFailover registers a hook run (under the failover lock) after a replica
// is fenced and any promotion finished, before mirrors are re-seeded. Hooks
// re-publish server-side state that reaches the regions through local
// writes — which bypass the replicated fabric path — and must therefore use
// only Local* region access themselves.
func (r *Replicator) OnFailover(h func(epoch uint64)) {
	if r.attached.Load() {
		panic("pmfsrep: OnFailover after Attach")
	}
	r.onFailover = append(r.onFailover, h)
}

// Attach interposes the replicator on f's route for the PMFS node.
func (r *Replicator) Attach(f *rdma.Fabric) {
	r.attached.Store(true)
	f.AttachRemote(r.node, r)
}

// SetObserver installs the replication-tax observer (nil clears it).
func (r *Replicator) SetObserver(o Observer) {
	if o == nil {
		r.obs.Store(nil)
		return
	}
	r.obs.Store(&o)
}

// Epoch returns the current pmfs replication epoch.
func (r *Replicator) Epoch() uint64 { return r.epoch.Load() }

// Leader returns the current leader replica's id.
func (r *Replicator) Leader() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replicas[r.leader].id
}

// Live returns the number of unfenced replicas.
func (r *Replicator) Live() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.liveLocked()
}

func (r *Replicator) liveLocked() int {
	n := 0
	for _, rep := range r.replicas {
		if !rep.fenced {
			n++
		}
	}
	return n
}

// --- replication core -------------------------------------------------------

// mirrorRecord encodes one record through the replication codec (the wire
// image a socket-hosted replica would receive) and applies the decoded form
// to every live follower. Callers hold mu.RLock. It returns the ack count
// including the leader.
func (r *Replicator) mirrorRecord(kind uint8, region string, off int, val uint64, data []byte) int {
	seq := r.seq.Add(1)
	rec := Record{Kind: kind, Epoch: r.epoch.Load(), Seq: seq,
		Region: region, Off: uint32(off), Val: val, Data: data}
	bufp := r.encPool.Get().(*[]byte)
	b := AppendRecord((*bufp)[:0], rec)
	dec, _, err := DecodeRecord(b)
	if err != nil {
		// A record the followers cannot parse must never be acked.
		panic(fmt.Sprintf("pmfsrep: self-encoded record failed to decode: %v", err))
	}
	acks := 1 // the leader copy already holds the op
	for _, rep := range r.replicas {
		if rep.m == nil || rep.fenced {
			continue
		}
		if !rep.m.apply(dec) {
			r.dupSuppressed.Inc()
		}
		acks++ // present either way: a suppressed duplicate is still an ack
	}
	*bufp = b
	r.encPool.Put(bufp)
	switch kind {
	case RecWrite:
		r.track.noteWrite(region, off, len(data), seq)
		r.mirroredWrites.Inc()
		r.mirroredBytes.Add(int64(len(data)) * int64(max(acks-1, 0)))
	case RecWord:
		r.track.noteWord(region, off, seq)
		r.grants.Inc()
	}
	return acks
}

// finishQuorum closes one replicated verb: quorum accounting, the latency
// histogram, and the per-source trace observer.
func (r *Replicator) finishQuorum(src common.NodeID, start time.Time, acks int) {
	if acks < r.need {
		r.degradedOps.Inc()
	}
	d := time.Since(start)
	r.quorumLat.Observe(d)
	if obs := r.obs.Load(); obs != nil {
		(*obs)(src, d)
	}
}

// readRepair quorum-verifies the version words covering [off, off+n) on
// every live follower and repairs laggards from the leader copy.
// Callers hold mu.RLock.
func (r *Replicator) readRepair(region string, off, n int) {
	info := r.regions[region]
	if n <= 0 {
		return
	}
	words := r.track.wordsIn(region, off, n)
	for ci := off / chunkSize; ci <= (off+n-1)/chunkSize; ci++ {
		lseq := r.track.chunkSeq(region, ci)
		if lseq == 0 {
			continue // baseline — every replica is in sync by construction
		}
		var img []byte // leader chunk image, read once per divergent chunk
		for _, rep := range r.replicas {
			if rep.m == nil || rep.fenced || rep.m.chunkSeq(region, ci) >= lseq {
				continue
			}
			if img == nil {
				base := ci * chunkSize
				cnt := min(chunkSize, info.size-base)
				if cnt <= 0 {
					break
				}
				img = make([]byte, cnt)
				if err := r.inner.Read(common.AnyNode, r.node, region, base, img, false, nil); err != nil {
					break
				}
			}
			rep.m.repairChunk(region, ci, img, lseq)
			r.readRepairs.Inc()
		}
	}
	for wo, lseq := range words {
		var val uint64
		var have bool
		for _, rep := range r.replicas {
			if rep.m == nil || rep.fenced || rep.m.wordSeq(region, wo) >= lseq {
				continue
			}
			if !have {
				var b [8]byte
				if err := r.inner.Read(common.AnyNode, r.node, region, wo, b[:], false, nil); err != nil {
					break
				}
				val, have = binary.LittleEndian.Uint64(b[:]), true
			}
			rep.m.repairWord(region, wo, val, lseq)
			r.readRepairs.Inc()
		}
	}
}

// --- rdma.Transport ---------------------------------------------------------

func (r *Replicator) Read(src, node common.NodeID, region string, off int, dst []byte, dup bool, ss *rdma.Stats) error {
	info, ok := r.regions[region]
	if !ok {
		return r.inner.Read(src, node, region, off, dst, dup, ss)
	}
	if r.gate.Load() {
		return errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.inner.Read(src, node, region, off, dst, dup, ss); err != nil {
		return err
	}
	if info.quorumRead {
		r.readRepair(region, off, len(dst))
	}
	return nil
}

func (r *Replicator) ReadV(src, node common.NodeID, region string, segs []rdma.Seg, dup bool, ss *rdma.Stats) error {
	info, ok := r.regions[region]
	if !ok {
		return r.inner.ReadV(src, node, region, segs, dup, ss)
	}
	if r.gate.Load() {
		return errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.inner.ReadV(src, node, region, segs, dup, ss); err != nil {
		return err
	}
	if info.quorumRead {
		for _, s := range segs {
			r.readRepair(region, s.Off, len(s.Buf))
		}
	}
	return nil
}

func (r *Replicator) Write(src, node common.NodeID, region string, off int, data []byte, dup bool, ss *rdma.Stats) error {
	if _, ok := r.regions[region]; !ok {
		return r.inner.Write(src, node, region, off, data, dup, ss)
	}
	if r.gate.Load() {
		return errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	start := time.Now()
	if err := r.inner.Write(src, node, region, off, data, dup, ss); err != nil {
		return err
	}
	acks := r.mirrorRecord(RecWrite, region, off, 0, data)
	r.finishQuorum(src, start, acks)
	return nil
}

func (r *Replicator) WriteV(src, node common.NodeID, region string, segs []rdma.Seg, dup bool, ss *rdma.Stats) error {
	if _, ok := r.regions[region]; !ok {
		return r.inner.WriteV(src, node, region, segs, dup, ss)
	}
	if r.gate.Load() {
		return errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	start := time.Now()
	if err := r.inner.WriteV(src, node, region, segs, dup, ss); err != nil {
		return err
	}
	// One record per segment; the whole vector shares one doorbell batch and
	// is accounted as one quorum round.
	acks := r.k
	for _, s := range segs {
		if a := r.mirrorRecord(RecWrite, region, s.Off, 0, s.Buf); a < acks {
			acks = a
		}
	}
	r.finishQuorum(src, start, acks)
	return nil
}

func (r *Replicator) CAS64(src, node common.NodeID, region string, off int, old, new uint64, ss *rdma.Stats) (uint64, error) {
	if _, ok := r.regions[region]; !ok {
		return r.inner.CAS64(src, node, region, off, old, new, ss)
	}
	if r.gate.Load() {
		return 0, errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	start := time.Now()
	prev, err := r.inner.CAS64(src, node, region, off, old, new, ss)
	if err != nil {
		return 0, err
	}
	if prev == old { // the swap happened — replicate the post-image
		acks := r.mirrorRecord(RecWord, region, off, new, nil)
		r.finishQuorum(src, start, acks)
	}
	return prev, nil
}

func (r *Replicator) FetchAdd64(src, node common.NodeID, region string, off int, delta uint64, ss *rdma.Stats) (uint64, error) {
	if _, ok := r.regions[region]; !ok {
		return r.inner.FetchAdd64(src, node, region, off, delta, ss)
	}
	if r.gate.Load() {
		return 0, errFailover
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	start := time.Now()
	prev, err := r.inner.FetchAdd64(src, node, region, off, delta, ss)
	if err != nil {
		return 0, err
	}
	// The grant record carries the counter's post-image; followers learn it
	// through the versioned in-band ack, and the seq gate plus max merge
	// make a retried grant unable to double-advance any mirror.
	acks := r.mirrorRecord(RecWord, region, off, prev+delta, nil)
	r.finishQuorum(src, start, acks)
	return prev, nil
}

// Call and CallBatch pass through: RPC services are compute on the PMFS
// host, not replicated memory — their durable side effects land in the
// regions (and replicate there) or in the shared store.
func (r *Replicator) Call(src, node common.NodeID, service string, req []byte, dropReply bool, ss *rdma.Stats) ([]byte, error) {
	return r.inner.Call(src, node, service, req, dropReply, ss)
}

func (r *Replicator) CallBatch(src, node common.NodeID, service string, reqs [][]byte, dropReply bool, ss *rdma.Stats) ([][]byte, error) {
	return r.inner.CallBatch(src, node, service, reqs, dropReply, ss)
}

// Close detaches nothing: the fabric owns the inner transport.
func (r *Replicator) Close() error { return nil }

var _ rdma.Transport = (*Replicator)(nil)

// --- failover ---------------------------------------------------------------

// KillReplica fail-stops replica id: the survivors fence it, CAS the pmfs
// epoch forward exactly once, promote the most-advanced follower if the
// leader died, and re-seed the remaining mirrors. Verbs arriving during the
// window bounce with a typed-transient error (absorbed by common.Retry);
// verbs already in flight finish first — an acked op is on a quorum before
// its issuer ever saw the ack, so nothing acked can be lost.
func (r *Replicator) KillReplica(id int) error {
	if id < 0 || id >= r.k {
		return fmt.Errorf("pmfsrep: replica %d out of range [0,%d)", id, r.k)
	}
	r.gate.Store(true)
	defer r.gate.Store(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.replicas[id]
	if rep.fenced {
		return fmt.Errorf("pmfsrep: replica %d already fenced", id)
	}
	if r.liveLocked() <= 1 {
		return fmt.Errorf("pmfsrep: replica %d is the last live copy", id)
	}
	rep.fenced = true
	// Exactly one epoch advance per failover, CAS-published so a racing
	// reader never observes a skipped epoch.
	for {
		e := r.epoch.Load()
		if r.epoch.CompareAndSwap(e, e+1) {
			break
		}
	}
	r.failovers.Inc()
	if id == r.leader {
		r.promoteLocked()
	}
	// Server-side state that reaches the regions through local writes
	// bypassed replication; let the owners republish it before re-seeding.
	for _, h := range r.onFailover {
		h(r.epoch.Load())
	}
	// Re-seed: survivors drop their deltas and adopt the (repaired) leader
	// copy as the new baseline.
	r.track.reset()
	for _, s := range r.replicas {
		if s.m != nil && !s.fenced {
			s.m.reset()
		}
	}
	return nil
}

// promoteLocked installs the most-advanced live follower as leader: its
// mirrored extents are written into the real regions (the surviving copy of
// record — every acked record is in it), then its mirror role dissolves.
func (r *Replicator) promoteLocked() {
	best := -1
	var bestSeq uint64
	for i, rep := range r.replicas {
		if rep.fenced || rep.m == nil {
			continue
		}
		if ls := rep.m.last(); best == -1 || ls > bestSeq {
			best, bestSeq = i, ls
		}
	}
	if best == -1 {
		return // liveLocked() > 1 guarantees a follower exists
	}
	m := r.replicas[best].m
	m.mu.Lock()
	for name, mr := range m.regions {
		info, ok := r.regions[name]
		if !ok {
			continue
		}
		var segs []rdma.Seg
		for ci, c := range mr.chunks {
			base := ci * chunkSize
			cnt := min(chunkSize, info.size-base)
			if cnt <= 0 {
				continue
			}
			segs = append(segs, rdma.Seg{Off: base, Buf: c.data[:cnt]})
		}
		if len(segs) > 0 {
			// One doorbell batch per region; promotion-time ops are not
			// charged to any issuing node.
			_ = r.inner.WriteV(common.AnyNode, r.node, name, segs, false, nil)
		}
		for off, w := range mr.words {
			// Max-merge against the surviving copy so monotonic counters
			// (the TSO) can never move backwards across a failover.
			var b [8]byte
			cur := uint64(0)
			if err := r.inner.Read(common.AnyNode, r.node, name, off, b[:], false, nil); err == nil {
				cur = binary.LittleEndian.Uint64(b[:])
			}
			if w.val > cur {
				binary.LittleEndian.PutUint64(b[:], w.val)
				_ = r.inner.Write(common.AnyNode, r.node, name, off, b[:], false, nil)
			}
		}
	}
	m.mu.Unlock()
	r.replicas[best].m = nil
	r.leader = best
}

// Resync re-baselines every live mirror against the current leader copy —
// the hook CrashAll/RecoverAll use after rewriting region state through
// local writes (SetTSO, membership reset) that bypassed replication.
func (r *Replicator) Resync() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.track.reset()
	for _, rep := range r.replicas {
		if rep.m != nil && !rep.fenced {
			rep.m.reset()
		}
	}
}

// --- stats ------------------------------------------------------------------

// Stats is a point-in-time snapshot of the replication tier.
type Stats struct {
	Replicas       int
	Live           int
	Leader         int
	Epoch          uint64
	Failovers      int64
	Grants         int64
	MirroredWrites int64
	MirroredBytes  int64
	ReadRepairs    int64
	DupSuppressed  int64
	DegradedOps    int64
	QuorumOps      int64
	QuorumMean     time.Duration
	QuorumP50      time.Duration
	QuorumP99      time.Duration
}

// Snapshot returns the tier's current stats.
func (r *Replicator) Snapshot() Stats {
	r.mu.RLock()
	leader, live := r.replicas[r.leader].id, r.liveLocked()
	r.mu.RUnlock()
	return Stats{
		Replicas:       r.k,
		Live:           live,
		Leader:         leader,
		Epoch:          r.epoch.Load(),
		Failovers:      r.failovers.Load(),
		Grants:         r.grants.Load(),
		MirroredWrites: r.mirroredWrites.Load(),
		MirroredBytes:  r.mirroredBytes.Load(),
		ReadRepairs:    r.readRepairs.Load(),
		DupSuppressed:  r.dupSuppressed.Load(),
		DegradedOps:    r.degradedOps.Load(),
		QuorumOps:      r.quorumLat.Count(),
		QuorumMean:     r.quorumLat.Mean(),
		QuorumP50:      r.quorumLat.Quantile(0.50),
		QuorumP99:      r.quorumLat.Quantile(0.99),
	}
}
