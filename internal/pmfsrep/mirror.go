package pmfsrep

import "sync"

// chunkSize is the version-word granularity: each replicated region is
// tracked as 256-byte chunks, each guarded by the sequence number of the
// last record that touched it. 256 bytes keeps heartbeat slots (24 B) and
// page frames (multi-KiB) both reasonable: a slot maps to one chunk, a frame
// push advances a handful.
const chunkSize = 256

// word is a mirrored 8-byte atomic cell: the post-image of the newest grant
// applied, guarded by that record's sequence. Values merge with a max rule —
// every PMFS word under atomics (TSO counter, epochs) is monotonic, so max
// is exactly the convergent merge and a replayed grant can never move a
// mirror backwards or double-advance it.
type word struct {
	seq uint64
	val uint64
}

// chunk is one mirrored 256-byte extent plus its version word.
type chunk struct {
	seq  uint64
	data []byte
}

// mregion is one region's sparse mirror: only extents that replicated since
// the last resync are materialized. An absent chunk means "unchanged since
// the resync baseline", which by construction equals the leader copy.
type mregion struct {
	chunks map[int]*chunk
	words  map[int]*word
}

// mirror is one follower replica's copy of the replicated tier. All applies
// are seq-gated: a record whose Seq does not exceed the target chunk/word's
// version is a duplicate (or arrived out of order behind a newer write) and
// is not applied.
type mirror struct {
	mu      sync.Mutex
	regions map[string]*mregion
	lastSeq uint64 // highest record seq applied; promotion picks the max
}

func newMirror() *mirror {
	return &mirror{regions: make(map[string]*mregion)}
}

func (m *mirror) region(name string) *mregion {
	mr := m.regions[name]
	if mr == nil {
		mr = &mregion{chunks: make(map[int]*chunk), words: make(map[int]*word)}
		m.regions[name] = mr
	}
	return mr
}

// apply merges one decoded record into the mirror. It returns false when the
// record was entirely stale or duplicate (no chunk or word advanced) — the
// no-double-advance guarantee for retried grants.
func (m *mirror) apply(rec Record) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mr := m.region(rec.Region)
	fresh := false
	switch rec.Kind {
	case RecWord:
		w := mr.words[int(rec.Off)]
		if w == nil {
			w = &word{}
			mr.words[int(rec.Off)] = w
		}
		if rec.Seq > w.seq {
			w.seq = rec.Seq
			if rec.Val > w.val {
				w.val = rec.Val
			}
			fresh = true
		}
	case RecWrite:
		off, n := int(rec.Off), len(rec.Data)
		if n == 0 {
			fresh = true // trivially applied
			break
		}
		for ci := off / chunkSize; ci <= (off+n-1)/chunkSize; ci++ {
			c := mr.chunks[ci]
			if c == nil {
				c = &chunk{data: make([]byte, chunkSize)}
				mr.chunks[ci] = c
			}
			if rec.Seq <= c.seq {
				continue
			}
			base := ci * chunkSize
			lo, hi := max(off, base), min(off+n, base+chunkSize)
			copy(c.data[lo-base:hi-base], rec.Data[lo-off:hi-off])
			c.seq = rec.Seq
			fresh = true
		}
	}
	if fresh && rec.Seq > m.lastSeq {
		m.lastSeq = rec.Seq
	}
	return fresh
}

// chunkSeq returns the version word of one chunk (0 = baseline / in sync).
func (m *mirror) chunkSeq(region string, ci int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mr := m.regions[region]; mr != nil {
		if c := mr.chunks[ci]; c != nil {
			return c.seq
		}
	}
	return 0
}

// wordSeq returns the version word of one mirrored atomic cell.
func (m *mirror) wordSeq(region string, off int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mr := m.regions[region]; mr != nil {
		if w := mr.words[off]; w != nil {
			return w.seq
		}
	}
	return 0
}

// wordVal returns a mirrored atomic cell's value (0, false if absent).
func (m *mirror) wordVal(region string, off int) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mr := m.regions[region]; mr != nil {
		if w := mr.words[off]; w != nil {
			return w.val, true
		}
	}
	return 0, false
}

// repairChunk force-installs chunk bytes read from the leader copy at the
// leader's version word — the read-repair path for a lagging follower.
func (m *mirror) repairChunk(region string, ci int, data []byte, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mr := m.region(region)
	c := mr.chunks[ci]
	if c == nil {
		c = &chunk{data: make([]byte, chunkSize)}
		mr.chunks[ci] = c
	}
	if seq <= c.seq {
		return // a concurrent apply already caught it up
	}
	copy(c.data, data)
	c.seq = seq
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
}

// repairWord force-installs a word read from the leader copy (max-merged).
func (m *mirror) repairWord(region string, off int, val, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mr := m.region(region)
	w := mr.words[off]
	if w == nil {
		w = &word{}
		mr.words[off] = w
	}
	if seq <= w.seq {
		return
	}
	w.seq = seq
	if val > w.val {
		w.val = val
	}
	if seq > m.lastSeq {
		m.lastSeq = seq
	}
}

// reset drops every mirrored extent, re-establishing "absent = in sync with
// the leader copy" as the baseline (post-failover resync, CrashAll).
func (m *mirror) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions = make(map[string]*mregion)
	m.lastSeq = 0
}

func (m *mirror) last() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeq
}

// seqTrack is the leader-side version-word table: for every replicated
// chunk/word it records the sequence of the newest record the leader
// shipped. Quorum reads compare follower version words against it to find
// divergence worth repairing.
type seqTrack struct {
	mu      sync.Mutex
	regions map[string]*trackRegion
}

type trackRegion struct {
	chunks map[int]uint64
	words  map[int]uint64
}

func newSeqTrack() *seqTrack {
	return &seqTrack{regions: make(map[string]*trackRegion)}
}

func (st *seqTrack) region(name string) *trackRegion {
	tr := st.regions[name]
	if tr == nil {
		tr = &trackRegion{chunks: make(map[int]uint64), words: make(map[int]uint64)}
		st.regions[name] = tr
	}
	return tr
}

func (st *seqTrack) noteWrite(region string, off, n int, seq uint64) {
	if n == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tr := st.region(region)
	for ci := off / chunkSize; ci <= (off+n-1)/chunkSize; ci++ {
		if seq > tr.chunks[ci] {
			tr.chunks[ci] = seq
		}
	}
}

func (st *seqTrack) noteWord(region string, off int, seq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tr := st.region(region)
	if seq > tr.words[off] {
		tr.words[off] = seq
	}
}

func (st *seqTrack) chunkSeq(region string, ci int) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if tr := st.regions[region]; tr != nil {
		return tr.chunks[ci]
	}
	return 0
}

// wordsIn returns the (offset, seq) pairs of tracked words inside
// [off, off+n) — the cells a quorum read must verify.
func (st *seqTrack) wordsIn(region string, off, n int) map[int]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	tr := st.regions[region]
	if tr == nil {
		return nil
	}
	var out map[int]uint64
	for wo, seq := range tr.words {
		if wo >= off && wo+8 <= off+n {
			if out == nil {
				out = make(map[int]uint64)
			}
			out[wo] = seq
		}
	}
	return out
}

func (st *seqTrack) reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.regions = make(map[string]*trackRegion)
}
