// Package pmfsrep replicates the PMFS shared-memory tier across K replicas,
// following SWARM's single-round-trip replicated one-sided writes with
// in-band consensus (PAPERS.md). The replicator interposes on the fabric
// route for the PMFS node: every verb that mutates a replicated region
// executes on the leader copy (the real fabric regions) and is mirrored to
// the follower replicas as a versioned record before the verb returns — the
// acks ride the same doorbell batch as the leader op, so the warm commit
// path pays zero extra fabric verbs. Version words (per-chunk sequence
// numbers) gate every follower apply: a retried or duplicated record can
// never double-advance a mirror, and quorum reads repair any follower whose
// version word lags the leader's.
//
// Replica death is a chaos event, not a cluster-ending one: KillReplica
// fences the dead copy, CAS-advances the pmfs epoch exactly once, promotes
// the most-advanced follower if the leader died, and re-seeds the survivors.
// In-flight verbs during the failover window surface as typed-transient
// errors absorbed by the existing common.Retry paths.
package pmfsrep

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record kinds.
const (
	// RecWrite replicates a one-sided byte-range write (membership
	// heartbeats, DBP frame pushes, any region write).
	RecWrite = 1
	// RecWord replicates the post-image of an 8-byte atomic — a TSO grant's
	// new counter value or a CAS epoch publish. Followers merge words with a
	// seq-gated max rule, so a retried grant can never double-advance.
	RecWord = 2
)

// MaxRecordData bounds one record's payload; a DBP frame push is the
// largest replicated write and fits comfortably.
const MaxRecordData = 1 << 20

// maxRegionName bounds the region-name field (encoded length is one byte).
const maxRegionName = 255

// Record is one replicated PMFS mutation — the in-band ack unit. The leader
// executes the verb on its copy, encodes the record, and each follower's
// version words advance by applying it; a record whose Seq does not exceed
// the follower's current version word is a duplicate and is ignored.
type Record struct {
	Kind   uint8
	Epoch  uint64 // pmfs replication epoch the leader held when issuing
	Seq    uint64 // global replication sequence — the version word
	Region string
	Off    uint32
	Val    uint64 // RecWord: the post-op word value
	Data   []byte // RecWrite: the bytes written (aliases the input on decode)
}

// ErrBadRecord reports a replication record that failed to decode.
var ErrBadRecord = errors.New("pmfsrep: malformed replication record")

// AppendRecord appends r's wire encoding to dst and returns the extended
// slice. Layout (all integers little-endian):
//
//	[kind u8][epoch u64][seq u64][rlen u8][region][off u32]
//	RecWord:  [val u64]
//	RecWrite: [dlen u32][data]
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst, r.Kind)
	dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, uint8(len(r.Region)))
	dst = append(dst, r.Region...)
	dst = binary.LittleEndian.AppendUint32(dst, r.Off)
	switch r.Kind {
	case RecWord:
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	case RecWrite:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
		dst = append(dst, r.Data...)
	}
	return dst
}

// DecodeRecord decodes one record from the front of b, returning the record
// and the bytes consumed. Record.Data aliases b — callers that retain the
// record past b's lifetime must copy. On error, consumed is 0.
func DecodeRecord(b []byte) (Record, int, error) {
	fail := func(what string) (Record, int, error) {
		return Record{}, 0, fmt.Errorf("%w: %s", ErrBadRecord, what)
	}
	// Fixed prefix: kind + epoch + seq + rlen.
	if len(b) < 1+8+8+1 {
		return fail("short header")
	}
	var r Record
	r.Kind = b[0]
	if r.Kind != RecWrite && r.Kind != RecWord {
		return fail("unknown kind")
	}
	r.Epoch = binary.LittleEndian.Uint64(b[1:9])
	r.Seq = binary.LittleEndian.Uint64(b[9:17])
	rlen := int(b[17])
	p := 18
	if rlen == 0 {
		return fail("empty region name")
	}
	if len(b) < p+rlen+4 {
		return fail("short region name")
	}
	r.Region = string(b[p : p+rlen])
	p += rlen
	r.Off = binary.LittleEndian.Uint32(b[p : p+4])
	p += 4
	switch r.Kind {
	case RecWord:
		if len(b) < p+8 {
			return fail("short word value")
		}
		r.Val = binary.LittleEndian.Uint64(b[p : p+8])
		p += 8
	case RecWrite:
		if len(b) < p+4 {
			return fail("short data length")
		}
		dlen := int(binary.LittleEndian.Uint32(b[p : p+4]))
		p += 4
		if dlen > MaxRecordData {
			return fail("oversized data")
		}
		if len(b) < p+dlen {
			return fail("short data")
		}
		r.Data = b[p : p+dlen]
		p += dlen
	}
	return r, p, nil
}
