package pmfsrep

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

const (
	testNode = common.PMFSNode
	tsoReg   = "pmfs.tso"
	memReg   = "pmfs.members"
)

// newTestTier builds a fabric with a PMFS endpoint hosting a TSO word and a
// small quorum-read region, fronted by a K-way replicator.
func newTestTier(t *testing.T, k int) (*rdma.Fabric, *Replicator) {
	t.Helper()
	f := rdma.NewFabric(rdma.Latency{})
	ep := f.Register(testNode)
	ep.RegisterRegion(tsoReg, 8)
	ep.RegisterRegion(memReg, 1024)
	r := New(f, testNode, k)
	r.AddRegion(tsoReg, 8, false)
	r.AddRegion(memReg, 1024, true)
	r.Attach(f)
	return f, r
}

// TestReplicatedFetchAddNeverDoubleAdvances is the TSO safety property under
// fault injection: concurrent committers draw grants through the replicated
// FetchAdd64 while ~1/5 of atomics are dropped before execution (the fabric
// contract chaos relies on) and every one-sided write is delivered twice.
// Retried grants must never double-advance the oracle: the successful grants
// form a dense, duplicate-free range, and every follower mirror converges on
// the final counter value.
func TestReplicatedFetchAddNeverDoubleAdvances(t *testing.T) {
	f, r := newTestTier(t, 3)

	var opCount atomic.Uint64
	f.SetInjector(func(op common.FaultOp) common.FaultDecision {
		n := opCount.Add(1)
		switch op.Class {
		case common.FaultAtomic:
			if n%5 == 0 {
				return common.FaultDecision{Err: common.ErrInjected}
			}
		case common.FaultWrite:
			return common.FaultDecision{Duplicate: true}
		}
		return common.FaultDecision{}
	})
	defer f.SetInjector(nil)

	const workers, grantsPer = 8, 200
	grants := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < grantsPer; i++ {
				var prev uint64
				err := common.Retry(common.DefaultRetryPolicy(), func() (e error) {
					prev, e = f.FetchAdd64(testNode, tsoReg, 0, 1)
					return e
				})
				if err != nil {
					t.Errorf("worker %d grant %d: %v", w, i, err)
					return
				}
				grants[w] = append(grants[w], prev)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Grants dense and duplicate-free: exactly {0..total-1}.
	total := workers * grantsPer
	seen := make(map[uint64]bool, total)
	for _, g := range grants {
		for _, prev := range g {
			if seen[prev] {
				t.Fatalf("grant %d issued twice — the TSO double-advanced", prev)
			}
			seen[prev] = true
		}
	}
	for i := uint64(0); i < uint64(total); i++ {
		if !seen[i] {
			t.Fatalf("grant %d never issued — the range has a hole", i)
		}
	}
	if v, err := f.Read64(testNode, tsoReg, 0); err != nil || v != uint64(total) {
		t.Fatalf("leader TSO = %d, %v; want %d", v, err, total)
	}
	// Every follower mirror learned the final counter through in-band acks.
	for _, rep := range r.replicas {
		if rep.m == nil {
			continue
		}
		if v, ok := rep.m.wordVal(tsoReg, 0); !ok || v != uint64(total) {
			t.Fatalf("follower %d mirror TSO = %d (present=%v), want %d", rep.id, v, ok, total)
		}
	}
	if st := r.Snapshot(); st.Grants < int64(total) {
		t.Fatalf("grants counter %d < %d successful grants", st.Grants, total)
	}
}

// TestDuplicateRecordSuppressed pins the version-word gate: re-applying the
// same record (duplicate delivery of an in-band ack) is refused, and a stale
// record cannot roll a newer word or chunk backwards.
func TestDuplicateRecordSuppressed(t *testing.T) {
	m := newMirror()
	grant := Record{Kind: RecWord, Epoch: 1, Seq: 7, Region: tsoReg, Off: 0, Val: 42}
	if !m.apply(grant) {
		t.Fatal("first apply refused")
	}
	if m.apply(grant) {
		t.Fatal("duplicate apply accepted — retried grant could double-advance")
	}
	if v, _ := m.wordVal(tsoReg, 0); v != 42 {
		t.Fatalf("word = %d after duplicate, want 42", v)
	}
	// A stale grant (older seq, lower value) must not regress the word.
	if m.apply(Record{Kind: RecWord, Epoch: 1, Seq: 3, Region: tsoReg, Off: 0, Val: 17}) {
		t.Fatal("stale grant accepted")
	}
	if v, _ := m.wordVal(tsoReg, 0); v != 42 {
		t.Fatalf("word regressed to %d", v)
	}

	w := Record{Kind: RecWrite, Epoch: 1, Seq: 9, Region: memReg, Off: 8, Data: []byte("new")}
	if !m.apply(w) {
		t.Fatal("write apply refused")
	}
	if m.apply(Record{Kind: RecWrite, Epoch: 1, Seq: 5, Region: memReg, Off: 8, Data: []byte("old")}) {
		t.Fatal("stale write accepted over newer chunk")
	}
}

// TestFailoverFollowerDeath kills a follower: the epoch advances exactly
// once, the leader stays, and killing down to the last copy is refused.
func TestFailoverFollowerDeath(t *testing.T) {
	_, r := newTestTier(t, 3)
	if got := r.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	if err := r.KillReplica(1); err != nil {
		t.Fatalf("kill follower: %v", err)
	}
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after one kill = %d, want exactly 2", got)
	}
	if r.Leader() != 0 {
		t.Fatalf("leader changed to %d on follower death", r.Leader())
	}
	if err := r.KillReplica(1); err == nil {
		t.Fatal("double-kill of a fenced replica succeeded")
	}
	if got := r.Epoch(); got != 2 {
		t.Fatalf("refused kill advanced the epoch to %d", got)
	}
	if err := r.KillReplica(2); err != nil {
		t.Fatalf("kill second follower: %v", err)
	}
	if err := r.KillReplica(0); err == nil {
		t.Fatal("killed the last live copy")
	}
	if got, want := r.Snapshot().Failovers, int64(2); got != want {
		t.Fatalf("failovers = %d, want %d", got, want)
	}
}

// TestFailoverLeaderPromotion kills the leader mid-traffic: a follower is
// promoted, no acked write or grant is lost, and the TSO stays monotonic
// (grants after the failover continue above the pre-kill ceiling).
func TestFailoverLeaderPromotion(t *testing.T) {
	f, r := newTestTier(t, 3)
	for i := 0; i < 10; i++ {
		if _, err := f.FetchAdd64(testNode, tsoReg, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("slot-state")
	if err := f.Write(testNode, memReg, 64, payload); err != nil {
		t.Fatal(err)
	}

	if err := r.KillReplica(0); err != nil {
		t.Fatalf("kill leader: %v", err)
	}
	if r.Leader() == 0 {
		t.Fatal("leader not replaced")
	}
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want exactly 2", got)
	}

	// Acked state survives the promotion.
	got := make([]byte, len(payload))
	if err := f.Read(testNode, memReg, 64, got); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("acked write lost across failover: %q, %v", got, err)
	}
	if v, err := f.Read64(testNode, tsoReg, 0); err != nil || v != 10 {
		t.Fatalf("TSO = %d, %v after failover; want 10", v, err)
	}
	// Monotonic across the failover: the next grant starts at the ceiling.
	if prev, err := f.FetchAdd64(testNode, tsoReg, 0, 1); err != nil || prev != 10 {
		t.Fatalf("post-failover grant = %d, %v; want 10", prev, err)
	}
}

// TestReadRepair lags one follower behind the leader's version words and
// checks a quorum read heals it from the leader copy.
func TestReadRepair(t *testing.T) {
	f, r := newTestTier(t, 3)
	payload := []byte("lease-slot")
	if err := f.Write(testNode, memReg, 32, payload); err != nil {
		t.Fatal(err)
	}
	// Simulate a lagging copy (e.g. freshly re-seeded after partial sync):
	// drop follower 1's mirrored extents while the leader track still
	// remembers the write's version word.
	lag := r.replicas[1]
	lag.m.reset()

	buf := make([]byte, len(payload))
	if err := f.Read(testNode, memReg, 32, buf); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().ReadRepairs; got == 0 {
		t.Fatal("divergent follower not repaired on quorum read")
	}
	// The healed chunk carries the leader bytes at the leader's version.
	ci := 32 / chunkSize
	lseq := r.track.chunkSeq(memReg, ci)
	if lag.m.chunkSeq(memReg, ci) != lseq {
		t.Fatalf("follower chunk seq %d, want leader's %d", lag.m.chunkSeq(memReg, ci), lseq)
	}
	lag.m.mu.Lock()
	data := lag.m.regions[memReg].chunks[ci].data
	repaired := bytes.Equal(data[32:32+len(payload)], payload)
	lag.m.mu.Unlock()
	if !repaired {
		t.Fatal("repaired chunk does not match the leader copy")
	}
}

// TestFailoverWindowIsTransient pins the error contract verbs see while a
// failover drains the tier: typed-transient, absorbed by common.Retry.
func TestFailoverWindowIsTransient(t *testing.T) {
	f, r := newTestTier(t, 3)
	r.gate.Store(true)
	defer r.gate.Store(false)
	_, err := f.FetchAdd64(testNode, tsoReg, 0, 1)
	if err == nil {
		t.Fatal("gated verb succeeded")
	}
	if !common.IsTransient(err) {
		t.Fatalf("failover-window error %v is not typed-transient", err)
	}
	if !errors.Is(err, common.ErrUnreachable) {
		t.Fatalf("failover-window error %v does not wrap ErrUnreachable", err)
	}
}

// TestUnregisteredRegionPassthrough: verbs on regions outside the replicated
// set must not pay any replication tax or gating.
func TestUnregisteredRegionPassthrough(t *testing.T) {
	f := rdma.NewFabric(rdma.Latency{})
	ep := f.Register(testNode)
	ep.RegisterRegion("scratch", 64)
	ep.RegisterRegion(tsoReg, 8)
	r := New(f, testNode, 3)
	r.AddRegion(tsoReg, 8, false)
	r.Attach(f)
	r.gate.Store(true) // even mid-failover
	if err := f.Write(testNode, "scratch", 0, []byte("x")); err != nil {
		t.Fatalf("passthrough write: %v", err)
	}
	if got := r.Snapshot().MirroredWrites; got != 0 {
		t.Fatalf("unregistered region was mirrored (%d records)", got)
	}
}
