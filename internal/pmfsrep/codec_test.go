package pmfsrep

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecWord, Epoch: 1, Seq: 42, Region: "pmfs.tso", Off: 0, Val: 1 << 40},
		{Kind: RecWrite, Epoch: 7, Seq: 9, Region: "pmfs.members", Off: 6152, Data: []byte("heartbeat")},
		{Kind: RecWrite, Epoch: 2, Seq: 1, Region: "pmfs.dbp", Off: 16384, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: RecWrite, Epoch: 3, Seq: 5, Region: "r", Off: 0, Data: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	for i, want := range recs {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Epoch != want.Epoch || got.Seq != want.Seq ||
			got.Region != want.Region || got.Off != want.Off || got.Val != want.Val ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after the last record", len(buf))
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	good := AppendRecord(nil, Record{Kind: RecWord, Epoch: 1, Seq: 1, Region: "r", Off: 0, Val: 5})
	for name, b := range map[string][]byte{
		"empty":        nil,
		"short header": good[:10],
		"bad kind":     append([]byte{99}, good[1:]...),
		"truncated":    good[:len(good)-1],
	} {
		if _, n, err := DecodeRecord(b); err == nil {
			t.Fatalf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrBadRecord) {
			t.Fatalf("%s: error %v does not wrap ErrBadRecord", name, err)
		} else if n != 0 {
			t.Fatalf("%s: error with %d consumed", name, n)
		}
	}
}

// FuzzRecordDecode holds the replication ack/version-word codec to the same
// contract as the wire frame codec: errors consume nothing, and anything that
// decodes re-encodes to the exact consumed bytes.
func FuzzRecordDecode(f *testing.F) {
	f.Add(AppendRecord(nil, Record{Kind: RecWord, Epoch: 1, Seq: 7, Region: "pmfs.tso", Off: 0, Val: 99}))
	f.Add(AppendRecord(nil, Record{Kind: RecWrite, Epoch: 3, Seq: 8, Region: "pmfs.members", Off: 64, Data: []byte("hb")}))
	f.Add([]byte{RecWrite, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d consumed", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := AppendRecord(nil, rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data[:n], re)
		}
	})
}
