package storage

import "polardbmp/internal/common"

// API is the disaggregated-shared-storage surface the engine is written
// against. *Store implements it in-process; *Remote implements it over the
// fabric for satellite processes that joined an existing cluster (the
// PolarStore client of a node that does not host the store itself). Keeping
// the engine on this interface is what lets a primary run in a different OS
// process from the storage tier without changing wal/bufferfusion/core.
type API interface {
	// Stats exposes the implementation's local operation counters.
	Stats() *Stats
	// SetInjector installs (or removes, with nil) a fault injector.
	SetInjector(inj common.FaultInjector)

	// Page store.
	AllocPage() common.PageID
	ReadPage(id common.PageID) ([]byte, error)
	WritePage(id common.PageID, img []byte) error
	HasPage(id common.PageID) bool
	PageIDs() []common.PageID
	PageCount() int

	// Metadata area.
	PutMeta(key string, val []byte)
	GetMeta(key string) []byte
	MetaKeys() []string

	// Per-node append-only log streams.
	LogAppend(node common.NodeID, data []byte) common.LSN
	LogSync(node common.NodeID) common.LSN
	LogEndLSN(node common.NodeID) common.LSN
	LogDurableLSN(node common.NodeID) common.LSN
	LogStartLSN(node common.NodeID) common.LSN
	LogRead(node common.NodeID, lsn common.LSN, buf []byte) (int, error)
	LogCrashVolatile(node common.NodeID)
	FenceLog(node common.NodeID)
	UnfenceLog(node common.NodeID)
	LogFenced(node common.NodeID) bool
	LogTruncate(node common.NodeID, lsn common.LSN)
	LogShip(node common.NodeID, at common.LSN, data []byte) error
	LogNodes() []common.NodeID
}

var _ API = (*Store)(nil)
