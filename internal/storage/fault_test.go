package storage

import (
	"errors"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestInjectorPageOps verifies page I/O honors drop directives and that
// uninstalling the injector restores clean execution.
func TestInjectorPageOps(t *testing.T) {
	s := New(Latency{})
	id := s.AllocPage()
	if err := s.WritePage(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	s.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Layer != common.FaultLayerStorage || op.Dst != common.StorageNode {
			t.Errorf("bad op attribution: %+v", op)
		}
		return common.FaultDecision{Err: common.ErrInjected}
	})
	if _, err := s.ReadPage(id); !errors.Is(err, common.ErrInjected) || !common.IsTransient(err) {
		t.Fatalf("injected read err = %v", err)
	}
	if err := s.WritePage(id, []byte("v2")); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("injected write err = %v", err)
	}

	s.SetInjector(nil)
	img, err := s.ReadPage(id)
	if err != nil || string(img) != "v1" {
		t.Fatalf("post-uninstall read = %q, %v (dropped write must not have landed)", img, err)
	}
}

// TestInjectorLogSyncDelayOnly pins the design decision that log syncs can
// stall but never fail: PolarFS's replicated append has no error path in
// this simulation, so Err directives on FaultLogSync are ignored.
func TestInjectorLogSyncDelayOnly(t *testing.T) {
	s := New(Latency{})
	s.LogAppend(1, []byte("rec"))

	fired := 0
	s.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class != common.FaultLogSync {
			return common.FaultDecision{}
		}
		fired++
		return common.FaultDecision{Err: common.ErrInjected, Delay: time.Microsecond}
	})
	lsn := s.LogSync(1)
	if fired == 0 {
		t.Fatal("injector not consulted on LogSync")
	}
	if got := s.LogDurableLSN(1); got != lsn {
		t.Fatalf("durable LSN %d after injected sync, want %d — sync must not fail", got, lsn)
	}
}

// TestInjectorLogRead verifies log reads are failable.
func TestInjectorLogRead(t *testing.T) {
	s := New(Latency{})
	start := s.LogStartLSN(1)
	s.LogAppend(1, []byte("abc"))
	s.LogSync(1)

	s.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultLogRead {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	if _, err := s.LogRead(1, start, make([]byte, 16)); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("injected log read err = %v", err)
	}
	s.SetInjector(nil)
	if _, err := s.LogRead(1, start, make([]byte, 16)); err != nil {
		t.Fatalf("post-uninstall log read err = %v", err)
	}
}
