package storage_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/wal"
	"polardbmp/internal/wire"
)

// remoteHarness is a seed process (fabric + store + storage service) and a
// satellite process (fabric + Remote) joined over a real TCP socket.
type remoteHarness struct {
	seed *storage.Store
	rem  *storage.Remote
	fa   *rdma.Fabric
	fb   *rdma.Fabric
	srv  *rdma.FabricServer
}

func newRemoteHarness(t *testing.T) *remoteHarness {
	t.Helper()
	fa := rdma.NewFabric(rdma.Latency{})
	fb := rdma.NewFabric(rdma.Latency{})
	seed := storage.New(storage.Latency{})
	storage.Serve(fa.Register(common.PMFSNode), seed)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rdma.ServeFabric(fa, lis, "seed", &wire.NetCounters{})
	peer, err := rdma.DialPeer(fb, lis.Addr().String(), rdma.PeerConfig{Name: "sat", Counters: &wire.NetCounters{}})
	if err != nil {
		t.Fatal(err)
	}
	fb.AttachDefault(peer)
	t.Cleanup(func() {
		_ = peer.Close()
		srv.Close()
	})
	return &remoteHarness{seed: seed, rem: storage.NewRemote(fb.From(7)), fa: fa, fb: fb, srv: srv}
}

func TestRemotePageAndMetaOps(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem

	id := r.AllocPage()
	if r.HasPage(id) {
		t.Fatal("page exists before write")
	}
	if _, err := r.ReadPage(id); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("read missing page: %v", err)
	}
	img := bytes.Repeat([]byte{0xab}, 128)
	if err := r.WritePage(id, img); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadPage(id)
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("read back: %v %d bytes", err, len(got))
	}
	if !r.HasPage(id) || r.PageCount() != 1 {
		t.Fatalf("has=%v count=%d", r.HasPage(id), r.PageCount())
	}
	if ids := r.PageIDs(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("page ids %v", ids)
	}
	// Allocations at the seed and through the proxy share one id space.
	if h.seed.AllocPage() == id || r.AllocPage() == id {
		t.Fatal("alloc returned a duplicate id")
	}

	if r.GetMeta("missing") != nil {
		t.Fatal("missing meta must be nil")
	}
	r.PutMeta("ckpt", []byte("v1"))
	if v := r.GetMeta("ckpt"); string(v) != "v1" {
		t.Fatalf("meta %q", v)
	}
	// Empty values survive the nil/present distinction across the wire.
	r.PutMeta("empty", []byte{})
	if v := r.GetMeta("empty"); v == nil || len(v) != 0 {
		t.Fatalf("empty meta came back %v", v)
	}
	if keys := r.MetaKeys(); len(keys) != 2 {
		t.Fatalf("meta keys %v", keys)
	}
}

func TestRemoteLogRoundTrip(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem
	const node = common.NodeID(3)

	if got := r.LogAppend(node, []byte("first-rec")); got != 0 {
		t.Fatalf("first append placed at %d", got)
	}
	if got := r.LogAppend(node, []byte("second")); got != 9 {
		t.Fatalf("second append placed at %d", got)
	}
	if end := r.LogEndLSN(node); end != 15 {
		t.Fatalf("end %d", end)
	}
	if d := r.LogDurableLSN(node); d != 0 {
		t.Fatalf("durable before sync %d", d)
	}
	if d := r.LogSync(node); d != 15 {
		t.Fatalf("sync %d", d)
	}
	buf := make([]byte, 64)
	n, err := r.LogRead(node, 0, buf)
	if err != nil || string(buf[:n]) != "first-recsecond" {
		t.Fatalf("log read: %v %q", err, buf[:n])
	}
	if start := r.LogStartLSN(node); start != 0 {
		t.Fatalf("start %d", start)
	}
	if nodes := r.LogNodes(); len(nodes) != 1 || nodes[0] != node {
		t.Fatalf("log nodes %v", nodes)
	}
	// The seed sees the identical stream: this is one store, two views.
	if d := h.seed.LogDurableLSN(node); d != 15 {
		t.Fatalf("seed durable %d", d)
	}
}

func TestRemoteAppendRetryIdempotent(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem
	const node = common.NodeID(4)

	if got := r.LogAppend(node, []byte("aaaa")); got != 0 {
		t.Fatalf("seed append placed at %d", got)
	}

	// Drop exactly one RPC reply at the satellite's fabric: the append lands
	// at the seed but the satellite must retry — and the retry must be
	// acknowledged, not applied twice.
	var mu sync.Mutex
	dropped := false
	h.fb.SetInjector(func(op common.FaultOp) common.FaultDecision {
		mu.Lock()
		defer mu.Unlock()
		if op.Class == common.FaultRPC && !dropped {
			dropped = true
			return common.FaultDecision{DropReply: true}
		}
		return common.FaultDecision{}
	})
	if got := r.LogAppend(node, []byte("bbbb")); got != 4 {
		t.Fatalf("retried append placed at %d", got)
	}
	h.fb.SetInjector(nil)

	mu.Lock()
	if !dropped {
		t.Fatal("injector never fired")
	}
	mu.Unlock()
	if end := h.seed.LogEndLSN(node); end != 8 {
		t.Fatalf("stream end %d: duplicate append applied", end)
	}
	r.LogSync(node)
	buf := make([]byte, 16)
	n, _ := r.LogRead(node, 0, buf)
	if string(buf[:n]) != "aaaabbbb" {
		t.Fatalf("stream contents %q", buf[:n])
	}
}

func TestRemoteFencedPiggyback(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem
	const node = common.NodeID(5)

	r.LogAppend(node, []byte("live"))
	if r.LogFenced(node) {
		t.Fatal("fenced before fence")
	}
	// Another process fences the stream at the seed. The next append's
	// response carries the flag, so the satellite's cached view flips
	// without waiting out the TTL or issuing a LogFenced RPC.
	h.seed.FenceLog(node)
	r.LogAppend(node, []byte("dropped"))
	if !r.LogFenced(node) {
		t.Fatal("fenced flag did not piggyback on the append response")
	}
	if end := h.seed.LogEndLSN(node); end != 4 {
		t.Fatalf("fenced append mutated the stream: end %d", end)
	}

	// Fence/unfence through the proxy round-trips too.
	r.UnfenceLog(node)
	if r.LogFenced(node) || h.seed.LogFenced(node) {
		t.Fatal("unfence did not take")
	}
	r.FenceLog(node)
	if !h.seed.LogFenced(node) {
		t.Fatal("fence did not reach the seed")
	}
}

func TestRemoteWalWriter(t *testing.T) {
	h := newRemoteHarness(t)
	const node = common.NodeID(6)

	w := wal.NewWriter(h.rem, node)
	var end common.LSN
	for i := 0; i < 10; i++ {
		end = w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: common.LLSN(i + 1)})
	}
	w.Sync(end)
	if d := h.seed.LogDurableLSN(node); d != end {
		t.Fatalf("durable %d want %d", d, end)
	}

	// The seed can replay the satellite's stream.
	rd := wal.NewStreamReader(h.seed, node, 0, 0)
	count := 0
	for {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if rec == nil {
			break
		}
		if rec.Type != wal.RecCommit {
			t.Fatalf("record %d type %d", count, rec.Type)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("replayed %d records", count)
	}

	// Fencing mid-flight closes the writer instead of panicking.
	h.seed.FenceLog(node)
	w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: 11})
	w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: 12})
	w.Sync(end + 1)
	if d := h.seed.LogDurableLSN(node); d != end {
		t.Fatalf("fenced stream advanced to %d", d)
	}
}

// A transient uplink outage shorter than the retry budget must be invisible
// to the log path: no fail-safe fence, no misplaced LSN — the call blocks,
// rides the blip out, and lands exactly once. This is the regression guard
// for the bricked-satellite bug: a 500ms partition whose redial backoff
// outlasted the old ~1s retry budget stuck the fenced fail-safe, which
// permanently closed the node's wal.Writer even though the node still held
// its membership lease — every commit failed ErrNodeDown forever after.
func TestRemoteRidesOutUplinkBlip(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem
	const node = common.NodeID(9)

	if got := r.LogAppend(node, []byte("pre!")); got != 0 {
		t.Fatalf("seed append placed at %d", got)
	}

	// Fail every RPC until healed: the fabric conn looks dead for ~150ms,
	// comfortably inside the default retry budget.
	var blip atomic.Bool
	blip.Store(true)
	h.fb.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if blip.Load() && op.Class == common.FaultRPC {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	time.AfterFunc(150*time.Millisecond, func() { blip.Store(false) })

	start := time.Now()
	if got := r.LogAppend(node, []byte("blip")); got != 4 {
		t.Fatalf("append through blip placed at %d", got)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("append returned before the blip healed")
	}
	if r.LogFenced(node) {
		t.Fatal("transient outage must not fence the stream")
	}
	if d := r.LogSync(node); d != 8 {
		t.Fatalf("sync after blip: durable %d", d)
	}
	if end := h.seed.LogEndLSN(node); end != 8 {
		t.Fatalf("stream end %d after blip", end)
	}
}

// Same property one layer up: a wal.Writer whose store rides an uplink blip
// must stay open and keep committing afterwards, not close itself on a
// fail-safe fence while the node is still a lease-holding member.
func TestRemoteWalWriterSurvivesUplinkBlip(t *testing.T) {
	h := newRemoteHarness(t)
	const node = common.NodeID(10)

	w := wal.NewWriter(h.rem, node)
	end := w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: 1})
	w.Sync(end)

	var blip atomic.Bool
	blip.Store(true)
	h.fb.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if blip.Load() && op.Class == common.FaultRPC {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	time.AfterFunc(150*time.Millisecond, func() { blip.Store(false) })

	end = w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: 2})
	w.Sync(end)
	if d := h.seed.LogDurableLSN(node); d != end {
		t.Fatalf("durable %d want %d: commit lost in the blip", d, end)
	}

	// The writer must still be open: the next commit lands too.
	end = w.Append(&wal.Record{Type: wal.RecCommit, Node: node, LLSN: 3})
	w.Sync(end)
	if d := h.seed.LogDurableLSN(node); d != end {
		t.Fatalf("durable %d want %d: writer closed after the blip", d, end)
	}
}

func TestRemoteUplinkLossFailsSafe(t *testing.T) {
	h := newRemoteHarness(t)
	r := h.rem
	const node = common.NodeID(8)
	r.SetRetryPolicy(common.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})

	r.LogAppend(node, []byte("pre"))
	h.srv.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := r.ReadPage(1); err != nil && !errors.Is(err, common.ErrNotFound) {
			if !common.IsTransient(err) {
				t.Fatalf("uplink loss must surface as transient, got %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server close never surfaced")
		}
		time.Sleep(time.Millisecond)
	}

	// Error-less ops on the log path fail SAFE: the stream reports fenced
	// and appends stop acknowledging, so a wal.Writer closes cleanly.
	if got := r.LogAppend(node, []byte("lost")); got != 3 {
		t.Fatalf("dead-uplink append placed at %d", got)
	}
	if !r.LogFenced(node) {
		t.Fatal("dead uplink must report fenced")
	}
	r.LogSync(node) // must not hang or panic
}
