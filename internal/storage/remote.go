// Remote storage access: a satellite process (core.JoinRemote) runs its
// engine against the seed process's shared Store through a fabric RPC
// service, the way a PolarDB-MP primary talks to PolarStore over the network
// rather than hosting the store itself.
//
// The one protocol subtlety is the redo log. wal.Writer assumes LogAppend is
// applied exactly once at the stream end it tracks (it panics on any other
// offset unless the stream is fenced). A retried RPC could otherwise append
// twice, so the wire op is append-AT: the client sends the end LSN it
// expects, and the server applies only if the stream still ends there —
// observing end == expect+len(data) instead means the lost reply's append
// DID land and the retry is acknowledged without re-applying. Every
// append/sync response piggybacks the stream's fenced flag so the writer's
// LogFenced check sees fencing promptly without an extra RPC; if the uplink
// dies for good, LogFenced fails safe to true, which makes wal.Writer close
// itself instead of panicking or spinning.
package storage

import (
	"fmt"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/wire"
)

// ServiceStorage is the fabric RPC service name the storage proxy serves on
// the PMFS endpoint.
const ServiceStorage = "pmfs.storage"

// Storage proxy opcodes (first payload byte).
const (
	sopAllocPage uint8 = iota + 1
	sopReadPage
	sopWritePage
	sopHasPage
	sopPageIDs
	sopPageCount
	sopPutMeta
	sopGetMeta
	sopMetaKeys
	sopLogAppendAt
	sopLogSync
	sopLogEnd
	sopLogDurable
	sopLogStart
	sopLogRead
	sopLogCrash
	sopLogFence
	sopLogUnfence
	sopLogFenced
	sopLogTruncate
	sopLogShip
	sopLogNodes
)

// defaultFenceTTL bounds how stale a cached fenced=false may get before
// LogFenced re-asks the seed. Append/sync responses refresh the cache for
// free. Overridable per client with SetFenceTTL.
const defaultFenceTTL = 100 * time.Millisecond

// Serve registers the storage RPC service for s on ep (the seed does this on
// the PMFS endpoint). Responses are [status][result]; all integers LE.
func Serve(ep *rdma.Endpoint, s API) {
	ep.Serve(ServiceStorage, func(req []byte) ([]byte, error) {
		result, err := serveOp(s, req)
		out := wire.AppendStatus(nil, err)
		return append(out, result...), nil
	})
}

func serveOp(s API, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	op := rd.U8()
	switch op {
	case sopAllocPage:
		return wire.AppendU64(nil, uint64(s.AllocPage())), nil
	case sopReadPage:
		img, err := s.ReadPage(common.PageID(rd.U64()))
		if err != nil {
			return nil, err
		}
		return img, nil
	case sopWritePage:
		id := common.PageID(rd.U64())
		img := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, s.WritePage(id, img)
	case sopHasPage:
		if s.HasPage(common.PageID(rd.U64())) {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case sopPageIDs:
		ids := s.PageIDs()
		out := wire.AppendU32(nil, uint32(len(ids)))
		for _, id := range ids {
			out = wire.AppendU64(out, uint64(id))
		}
		return out, nil
	case sopPageCount:
		return wire.AppendU32(nil, uint32(s.PageCount())), nil
	case sopPutMeta:
		key := rd.Str()
		val := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		s.PutMeta(key, val)
		return nil, nil
	case sopGetMeta:
		v := s.GetMeta(rd.Str())
		if v == nil {
			return []byte{0}, nil
		}
		return append([]byte{1}, v...), nil
	case sopMetaKeys:
		keys := s.MetaKeys()
		out := wire.AppendU32(nil, uint32(len(keys)))
		for _, k := range keys {
			out = wire.AppendString(out, k)
		}
		return out, nil
	case sopLogAppendAt:
		node := common.NodeID(rd.U16())
		expect := common.LSN(rd.U64())
		data := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return serveLogAppendAt(s, node, expect, data), nil
	case sopLogSync:
		node := common.NodeID(rd.U16())
		lsn := s.LogSync(node)
		out := wire.AppendU64(nil, uint64(lsn))
		return appendFenced(out, s, node), nil
	case sopLogEnd:
		return wire.AppendU64(nil, uint64(s.LogEndLSN(common.NodeID(rd.U16())))), nil
	case sopLogDurable:
		return wire.AppendU64(nil, uint64(s.LogDurableLSN(common.NodeID(rd.U16())))), nil
	case sopLogStart:
		return wire.AppendU64(nil, uint64(s.LogStartLSN(common.NodeID(rd.U16())))), nil
	case sopLogRead:
		node := common.NodeID(rd.U16())
		lsn := common.LSN(rd.U64())
		n := int(rd.U32())
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if n < 0 || n > wire.MaxFrame/2 {
			n = wire.MaxFrame / 2
		}
		buf := make([]byte, n)
		got, err := s.LogRead(node, lsn, buf)
		if err != nil {
			return nil, err
		}
		return buf[:got], nil
	case sopLogCrash:
		s.LogCrashVolatile(common.NodeID(rd.U16()))
		return nil, nil
	case sopLogFence:
		s.FenceLog(common.NodeID(rd.U16()))
		return nil, nil
	case sopLogUnfence:
		s.UnfenceLog(common.NodeID(rd.U16()))
		return nil, nil
	case sopLogFenced:
		if s.LogFenced(common.NodeID(rd.U16())) {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case sopLogTruncate:
		node := common.NodeID(rd.U16())
		s.LogTruncate(node, common.LSN(rd.U64()))
		return nil, nil
	case sopLogShip:
		node := common.NodeID(rd.U16())
		at := common.LSN(rd.U64())
		data := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, s.LogShip(node, at, data)
	case sopLogNodes:
		ids := s.LogNodes()
		out := wire.AppendU32(nil, uint32(len(ids)))
		for _, id := range ids {
			out = wire.AppendU16(out, uint16(id))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("storage: rpc op %d: %w", op, common.ErrNoService)
	}
}

// serveLogAppendAt implements idempotent append-at-expected-LSN. Response:
// [placed u64][end u64][fenced u8][applied u8].
func serveLogAppendAt(s API, node common.NodeID, expect common.LSN, data []byte) []byte {
	end := s.LogEndLSN(node)
	placed := end
	applied := byte(0)
	switch {
	case end == expect:
		placed = s.LogAppend(node, data)
		end = s.LogEndLSN(node)
		if placed == expect && end == expect+common.LSN(len(data)) {
			applied = 1
		}
	case end == expect+common.LSN(len(data)) && len(data) > 0:
		// The previous attempt's reply was lost but its append landed:
		// acknowledge without re-applying.
		placed = expect
		applied = 1
	}
	out := wire.AppendU64(nil, uint64(placed))
	out = wire.AppendU64(out, uint64(end))
	fencedByte := byte(0)
	if s.LogFenced(node) {
		fencedByte = 1
	}
	return append(out, fencedByte, applied)
}

func appendFenced(out []byte, s API, node common.NodeID) []byte {
	if s.LogFenced(node) {
		return append(out, 1)
	}
	return append(out, 0)
}

// remoteStream is the client-side shadow of one log stream: the expected end
// LSN (for idempotent appends) and the fenced cache.
type remoteStream struct {
	mu       sync.Mutex
	end      common.LSN
	endKnown bool
	fenced   bool
	fencedAt time.Time
}

// Remote implements API over the fabric storage service. It is safe for
// concurrent use; per-stream append ordering is the caller's job exactly as
// with Store (wal.Writer already serializes its stream).
type Remote struct {
	conn  rdma.Conn
	stats Stats
	rp    common.RetryPolicy
	// fenceTTL is the freshness bound of the cached fenced flag (set once at
	// construction time via SetFenceTTL, before the client is shared).
	fenceTTL time.Duration

	mu      sync.Mutex
	streams map[common.NodeID]*remoteStream
}

// NewRemote returns a remote store speaking through conn (a satellite's
// source-bound fabric conn; the service lives on the PMFS endpoint reached
// via the conn's default route).
func NewRemote(conn rdma.Conn) *Remote {
	return &Remote{
		conn: conn,
		// The uplink policy is much heavier than the fabric default: storage
		// has almost no error paths, so riding out an outage beats surfacing
		// a failure the engine cannot express. The budget (~12s of backoff)
		// must exceed the worst transient outage the membership layer
		// forgives without evicting this node — a brief partition plus
		// keepalive detection plus the full redial backoff (2s cap, +25%
		// jitter) — because giving up early fail-safes the log stream to
		// fenced, which permanently closes the node's wal.Writer: a node
		// that still holds its lease would be bricked, committing nothing
		// ever again. If retries DO exhaust, the uplink has been dead far
		// longer than any lease, the seed has evicted us, and the sticky
		// fence below converges with the server-side truth.
		rp:       common.RetryPolicy{MaxAttempts: 40, BaseDelay: time.Millisecond, MaxDelay: 400 * time.Millisecond},
		fenceTTL: defaultFenceTTL,
		streams:  make(map[common.NodeID]*remoteStream),
	}
}

var _ API = (*Remote)(nil)

// SetRetryPolicy replaces the uplink retry policy (tests and operators that
// want faster failure detection than the ride-out default).
func (r *Remote) SetRetryPolicy(p common.RetryPolicy) { r.rp = p }

// SetFenceTTL replaces the fenced-piggyback cache TTL. A slow or lossy
// fabric can stretch the takeover window past the default; raising the TTL
// keeps LogFenced answering from cache instead of racing the takeover with
// fresh RPCs. Non-positive values are ignored.
func (r *Remote) SetFenceTTL(ttl time.Duration) {
	if ttl > 0 {
		r.fenceTTL = ttl
	}
}

// Stats exposes client-side op counters (reads/writes/syncs this process
// issued, not the seed's totals).
func (r *Remote) Stats() *Stats { return &r.stats }

// SetInjector is accepted for interface compatibility; fault injection for a
// satellite's storage path happens at the fabric layer it rides on.
func (r *Remote) SetInjector(inj common.FaultInjector) {}

func (r *Remote) stream(node common.NodeID) *remoteStream {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.streams[node]
	if st == nil {
		st = &remoteStream{}
		r.streams[node] = st
	}
	return st
}

// call performs one storage RPC with transient-fault retries and decodes the
// status header.
func (r *Remote) call(req []byte) ([]byte, error) {
	var result []byte
	err := common.Retry(r.rp, func() error {
		resp, err := r.conn.Call(common.PMFSNode, ServiceStorage, req)
		if err != nil {
			return err
		}
		rd := wire.NewReader(resp)
		if err := wire.DecodeStatus(rd); err != nil {
			return err
		}
		result = append([]byte(nil), rd.Rest()...)
		return nil
	})
	return result, err
}

// mustCall backs the API methods that have no error path (AllocPage,
// PutMeta, LogTruncate, ...): the store they model cannot fail, only stall.
// If the uplink stays dead past the retry budget the satellite has lost its
// disk; that is fatal.
func (r *Remote) mustCall(what string, req []byte) []byte {
	out, err := r.call(req)
	if err != nil {
		panic(fmt.Sprintf("storage: remote %s: uplink lost: %v", what, err))
	}
	return out
}

func reqOp(op uint8) []byte { return []byte{op} }

func reqNode(op uint8, node common.NodeID) []byte {
	return wire.AppendU16([]byte{op}, uint16(node))
}

// AllocPage allocates a cluster-unique page id at the seed.
func (r *Remote) AllocPage() common.PageID {
	out := r.mustCall("alloc page", reqOp(sopAllocPage))
	return common.PageID(wire.NewReader(out).U64())
}

// ReadPage fetches a page image from the seed's store.
func (r *Remote) ReadPage(id common.PageID) ([]byte, error) {
	r.stats.PageReads.Inc()
	return r.call(wire.AppendU64(reqOp(sopReadPage), uint64(id)))
}

// WritePage stores a page image through the seed.
func (r *Remote) WritePage(id common.PageID, img []byte) error {
	r.stats.PageWrites.Inc()
	req := wire.AppendU64(reqOp(sopWritePage), uint64(id))
	req = wire.AppendBytes(req, img)
	_, err := r.call(req)
	return err
}

// HasPage reports page existence.
func (r *Remote) HasPage(id common.PageID) bool {
	out := r.mustCall("has page", wire.AppendU64(reqOp(sopHasPage), uint64(id)))
	return len(out) == 1 && out[0] == 1
}

// PageIDs lists every stored page id.
func (r *Remote) PageIDs() []common.PageID {
	out := r.mustCall("page ids", reqOp(sopPageIDs))
	rd := wire.NewReader(out)
	k := int(rd.U32())
	ids := make([]common.PageID, 0, k)
	for i := 0; i < k; i++ {
		ids = append(ids, common.PageID(rd.U64()))
	}
	return ids
}

// PageCount returns the stored page count.
func (r *Remote) PageCount() int {
	out := r.mustCall("page count", reqOp(sopPageCount))
	return int(wire.NewReader(out).U32())
}

// PutMeta stores a metadata blob.
func (r *Remote) PutMeta(key string, val []byte) {
	req := wire.AppendString(reqOp(sopPutMeta), key)
	req = wire.AppendBytes(req, val)
	r.mustCall("put meta", req)
}

// GetMeta fetches a metadata blob (nil if absent).
func (r *Remote) GetMeta(key string) []byte {
	out := r.mustCall("get meta", wire.AppendString(reqOp(sopGetMeta), key))
	if len(out) == 0 || out[0] == 0 {
		return nil
	}
	return out[1:]
}

// MetaKeys lists metadata keys.
func (r *Remote) MetaKeys() []string {
	out := r.mustCall("meta keys", reqOp(sopMetaKeys))
	rd := wire.NewReader(out)
	k := int(rd.U32())
	keys := make([]string, 0, k)
	for i := 0; i < k; i++ {
		keys = append(keys, rd.Str())
	}
	return keys
}

// LogAppend appends to node's stream via append-at: idempotent under RPC
// retries, and fencing surfaces through the piggybacked flag rather than a
// misplaced LSN.
func (r *Remote) LogAppend(node common.NodeID, data []byte) common.LSN {
	st := r.stream(node)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.endKnown {
		out, err := r.call(reqNode(sopLogEnd, node))
		if err != nil {
			st.markFencedLocked()
			return st.end
		}
		st.end = common.LSN(wire.NewReader(out).U64())
		st.endKnown = true
	}
	req := reqNode(sopLogAppendAt, node)
	req = wire.AppendU64(req, uint64(st.end))
	req = wire.AppendBytes(req, data)
	out, err := r.call(req)
	if err != nil {
		// Uplink gone: report the stream fenced so wal.Writer closes
		// cleanly; nothing was durably acknowledged.
		st.markFencedLocked()
		return st.end
	}
	rd := wire.NewReader(out)
	placed := common.LSN(rd.U64())
	end := common.LSN(rd.U64())
	fenced := rd.U8() == 1
	st.end = end
	st.fenced = fenced
	st.fencedAt = time.Now()
	return placed
}

// LogSync makes the stream durable at the seed.
func (r *Remote) LogSync(node common.NodeID) common.LSN {
	r.stats.LogSyncs.Inc()
	st := r.stream(node)
	out, err := r.call(reqNode(sopLogSync, node))
	if err != nil {
		st.mu.Lock()
		st.markFencedLocked()
		lsn := st.end
		st.mu.Unlock()
		return lsn
	}
	rd := wire.NewReader(out)
	lsn := common.LSN(rd.U64())
	fenced := rd.U8() == 1
	st.mu.Lock()
	st.fenced = fenced
	st.fencedAt = time.Now()
	st.mu.Unlock()
	return lsn
}

// markFencedLocked fails the stream safe after a dead uplink: the writer
// sees fenced and closes instead of panicking on a misplaced LSN.
func (st *remoteStream) markFencedLocked() {
	st.fenced = true
	st.fencedAt = time.Now().Add(time.Hour) // sticky: no TTL refresh
}

func (r *Remote) logLSN(op uint8, node common.NodeID) common.LSN {
	out := r.mustCall("log lsn", reqNode(op, node))
	return common.LSN(wire.NewReader(out).U64())
}

// LogEndLSN returns the stream's append frontier.
func (r *Remote) LogEndLSN(node common.NodeID) common.LSN { return r.logLSN(sopLogEnd, node) }

// LogDurableLSN returns the durable frontier.
func (r *Remote) LogDurableLSN(node common.NodeID) common.LSN { return r.logLSN(sopLogDurable, node) }

// LogStartLSN returns the first retained LSN.
func (r *Remote) LogStartLSN(node common.NodeID) common.LSN { return r.logLSN(sopLogStart, node) }

// LogRead reads durable bytes starting at lsn.
func (r *Remote) LogRead(node common.NodeID, lsn common.LSN, buf []byte) (int, error) {
	r.stats.LogReads.Inc()
	req := reqNode(sopLogRead, node)
	req = wire.AppendU64(req, uint64(lsn))
	req = wire.AppendU32(req, uint32(len(buf)))
	out, err := r.call(req)
	if err != nil {
		return 0, err
	}
	return copy(buf, out), nil
}

// LogCrashVolatile discards the un-synced tail.
func (r *Remote) LogCrashVolatile(node common.NodeID) {
	r.mustCall("log crash", reqNode(sopLogCrash, node))
	r.invalidateEnd(node)
}

// FenceLog fences node's stream.
func (r *Remote) FenceLog(node common.NodeID) {
	r.mustCall("fence", reqNode(sopLogFence, node))
	st := r.stream(node)
	st.mu.Lock()
	st.fenced = true
	st.fencedAt = time.Now()
	st.mu.Unlock()
}

// UnfenceLog re-opens node's stream.
func (r *Remote) UnfenceLog(node common.NodeID) {
	r.mustCall("unfence", reqNode(sopLogUnfence, node))
	st := r.stream(node)
	st.mu.Lock()
	st.fenced = false
	st.fencedAt = time.Now()
	st.mu.Unlock()
}

// LogFenced reports the stream's fenced flag: from cache while fresh
// (append/sync responses refresh it for free), by RPC otherwise, and
// fail-safe true when the uplink is unreachable.
func (r *Remote) LogFenced(node common.NodeID) bool {
	st := r.stream(node)
	st.mu.Lock()
	if st.fenced || time.Since(st.fencedAt) < r.fenceTTL {
		f := st.fenced
		st.mu.Unlock()
		return f
	}
	st.mu.Unlock()
	out, err := r.call(reqNode(sopLogFenced, node))
	if err != nil {
		return true
	}
	fenced := len(out) == 1 && out[0] == 1
	st.mu.Lock()
	st.fenced = fenced
	st.fencedAt = time.Now()
	st.mu.Unlock()
	return fenced
}

// LogTruncate discards the stream prefix below lsn.
func (r *Remote) LogTruncate(node common.NodeID, lsn common.LSN) {
	r.mustCall("truncate", wire.AppendU64(reqNode(sopLogTruncate, node), uint64(lsn)))
	r.invalidateEnd(node)
}

// LogShip appends shipped bytes at an explicit LSN.
func (r *Remote) LogShip(node common.NodeID, at common.LSN, data []byte) error {
	req := reqNode(sopLogShip, node)
	req = wire.AppendU64(req, uint64(at))
	req = wire.AppendBytes(req, data)
	_, err := r.call(req)
	r.invalidateEnd(node)
	return err
}

// LogNodes lists streams known at the seed.
func (r *Remote) LogNodes() []common.NodeID {
	out := r.mustCall("log nodes", reqOp(sopLogNodes))
	rd := wire.NewReader(out)
	k := int(rd.U32())
	ids := make([]common.NodeID, 0, k)
	for i := 0; i < k; i++ {
		ids = append(ids, common.NodeID(rd.U16()))
	}
	return ids
}

// invalidateEnd drops the cached append frontier after ops that move it
// outside the append path.
func (r *Remote) invalidateEnd(node common.NodeID) {
	st := r.stream(node)
	st.mu.Lock()
	st.endKnown = false
	st.mu.Unlock()
}
