// Package storage simulates the disaggregated shared storage layer
// (PolarStore/PolarFS, §3): a page store and per-node append-only log
// streams, equally accessible from every primary node and surviving any
// node crash (DESIGN.md substitution S2).
//
// I/O latency is injected so that the storage-vs-shared-memory gap the
// Buffer Fusion design exploits (§4.2) is visible in benchmarks: a DBP read
// costs a fabric verb (sub-µs here, µs-scale in production) while a storage
// page read costs ~100µs.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
)

// Latency configures injected I/O delays. Zero values inject nothing.
type Latency struct {
	PageRead  time.Duration
	PageWrite time.Duration
	LogAppend time.Duration // charged per Sync batch, not per record
	LogRead   time.Duration
}

// DefaultLatency models a fast cloud block store: ~100µs reads, slightly
// cheaper writes (write-back caching on the store side), cheap log appends
// (3-replica append-optimized streams, per PolarFS).
func DefaultLatency() Latency {
	return Latency{
		PageRead:  100 * time.Microsecond,
		PageWrite: 80 * time.Microsecond,
		LogAppend: 30 * time.Microsecond,
		LogRead:   100 * time.Microsecond,
	}
}

func (l Latency) sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Stats counts storage operations.
type Stats struct {
	PageReads  metrics.Counter
	PageWrites metrics.Counter
	LogSyncs   metrics.Counter
	LogReads   metrics.Counter
}

// Store is the shared disaggregated store: pages + log streams + a small
// metadata area for cluster bootstrap state. It is safe for concurrent use
// and is never "crashed" in tests — only compute nodes crash; a full-cluster
// crash is simulated by discarding all node and PMFS state while keeping
// the Store.
type Store struct {
	latency Latency
	stats   Stats
	// inj holds a common.FaultInjector consulted before I/O entry points
	// (nil function value when injection is off).
	inj atomic.Value
	// persist, when set, mirrors durable state into a directory.
	persist *persister

	mu       sync.RWMutex
	pages    map[common.PageID][]byte
	nextPage uint64
	logs     map[common.NodeID]*logStream
	meta     map[string][]byte
}

// New creates an empty store.
func New(latency Latency) *Store {
	return &Store{
		latency:  latency,
		pages:    make(map[common.PageID][]byte),
		nextPage: uint64(common.InvalidPageID) + 1,
		logs:     make(map[common.NodeID]*logStream),
		meta:     make(map[string][]byte),
	}
}

// Stats exposes the store's operation counters.
func (s *Store) Stats() *Stats { return &s.stats }

// SetInjector installs (or, with nil, removes) a fault injector consulted
// before page and log I/O. Log appends and syncs honor only injected delays
// (a stalled-storage mode): PolarFS's replicated append does not fail, it
// stalls, and LogAppend/LogSync have no error path by design.
func (s *Store) SetInjector(inj common.FaultInjector) { s.inj.Store(inj) }

// inject consults the installed injector. src names the stream owner for
// log ops and AnyNode for page ops; failable reports whether the entry
// point has an error path (otherwise Err directives are ignored).
func (s *Store) inject(class string, src common.NodeID, name string, n int, failable bool) error {
	v := s.inj.Load()
	if v == nil {
		return nil
	}
	inj, _ := v.(common.FaultInjector)
	if inj == nil {
		return nil
	}
	d := inj(common.FaultOp{
		Layer: common.FaultLayerStorage, Class: class,
		Src: src, Dst: common.StorageNode, Name: name, Len: n,
	})
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Err != nil && failable {
		return fmt.Errorf("storage: %s %q: %w", class, name, d.Err)
	}
	return nil
}

// AllocPage allocates a fresh cluster-unique page id.
func (s *Store) AllocPage() common.PageID {
	s.mu.Lock()
	id := common.PageID(s.nextPage)
	s.nextPage++
	next := s.nextPage
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.persistAlloc(next)
	}
	return id
}

// ReadPage returns a copy of the page image, or ErrNotFound.
func (s *Store) ReadPage(id common.PageID) ([]byte, error) {
	if err := s.inject(common.FaultPageRead, common.AnyNode, "page", 0, true); err != nil {
		return nil, err
	}
	s.latency.sleep(s.latency.PageRead)
	s.stats.PageReads.Inc()
	s.mu.RLock()
	img, ok := s.pages[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: page %d: %w", id, common.ErrNotFound)
	}
	out := make([]byte, len(img))
	copy(out, img)
	return out, nil
}

// WritePage durably stores a copy of the page image. Page writes are atomic
// (PolarFS guarantees this for aligned page I/O).
func (s *Store) WritePage(id common.PageID, img []byte) error {
	if err := s.inject(common.FaultPageWrite, common.AnyNode, "page", len(img), true); err != nil {
		return err
	}
	s.latency.sleep(s.latency.PageWrite)
	s.stats.PageWrites.Inc()
	cp := make([]byte, len(img))
	copy(cp, img)
	s.mu.Lock()
	s.pages[id] = cp
	if uint64(id) >= s.nextPage {
		s.nextPage = uint64(id) + 1
	}
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.persistPage(id, cp)
	}
	return nil
}

// HasPage reports whether the page exists in the store.
func (s *Store) HasPage(id common.PageID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pages[id]
	return ok
}

// PageIDs returns every stored page id (recovery sweep support).
func (s *Store) PageIDs() []common.PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]common.PageID, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	return out
}

// PageCount returns the number of stored pages.
func (s *Store) PageCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// PutMeta durably stores a small metadata blob (space directory, checkpoint
// table). Metadata writes share the page-write cost model.
func (s *Store) PutMeta(key string, val []byte) {
	s.latency.sleep(s.latency.PageWrite)
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.meta[key] = cp
	s.mu.Unlock()
	if s.persist != nil {
		s.persist.persistMeta(key, cp)
	}
}

// GetMeta returns a copy of a metadata blob, or nil if absent.
func (s *Store) GetMeta(key string) []byte {
	s.mu.RLock()
	v := s.meta[key]
	s.mu.RUnlock()
	if v == nil {
		return nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp
}

// logStream is one node's append-only redo log file. The LSN of a record is
// its byte offset in the stream (§4.4). durable marks the synced prefix.
type logStream struct {
	mu      sync.Mutex
	buf     []byte
	durable int
	base    common.LSN // offset of buf[0] in the logical stream (after truncation)
	// fenced marks the stream read-only: a survivor has begun taking over
	// this node, so nothing the (possibly still running) owner appends may
	// become durable. Appends and syncs become no-ops until UnfenceLog.
	fenced bool
}

func (s *Store) stream(node common.NodeID) *logStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.logs[node]
	if ls == nil {
		ls = &logStream{}
		s.logs[node] = ls
	}
	return ls
}

// LogAppend appends data to node's log stream and returns the LSN (byte
// offset) at which it was placed. The data is not durable until LogSync.
func (s *Store) LogAppend(node common.NodeID, data []byte) common.LSN {
	ls := s.stream(node)
	ls.mu.Lock()
	lsn := ls.base + common.LSN(len(ls.buf))
	if !ls.fenced {
		ls.buf = append(ls.buf, data...)
	}
	ls.mu.Unlock()
	return lsn
}

// LogSync makes all appended data durable and returns the durable LSN (the
// offset just past the last durable byte).
func (s *Store) LogSync(node common.NodeID) common.LSN {
	_ = s.inject(common.FaultLogSync, node, "log", 0, false)
	s.latency.sleep(s.latency.LogAppend)
	s.stats.LogSyncs.Inc()
	ls := s.stream(node)
	ls.mu.Lock()
	if !ls.fenced {
		ls.durable = len(ls.buf)
	}
	lsn := ls.base + common.LSN(ls.durable)
	ls.mu.Unlock()
	if s.persist != nil {
		s.persist.persistLog(node, ls)
	}
	return lsn
}

// LogSyncBatch makes all appended data durable on every listed stream with a
// single injected latency charge, filling durables[i] with stream i's durable
// frontier. The streams are independent (per-node log files): a real store
// services their flushes concurrently, so one round of wall-clock latency
// covers all of them. With a fault injector installed it returns false
// without syncing anything — injected stalls must hit streams individually,
// so the caller falls back to per-stream LogSync.
func (s *Store) LogSyncBatch(nodes []common.NodeID, durables []common.LSN) bool {
	if v := s.inj.Load(); v != nil {
		if inj, _ := v.(common.FaultInjector); inj != nil {
			return false
		}
	}
	s.latency.sleep(s.latency.LogAppend)
	for i, n := range nodes {
		s.stats.LogSyncs.Inc()
		ls := s.stream(n)
		ls.mu.Lock()
		if !ls.fenced {
			ls.durable = len(ls.buf)
		}
		durables[i] = ls.base + common.LSN(ls.durable)
		ls.mu.Unlock()
		if s.persist != nil {
			s.persist.persistLog(n, ls)
		}
	}
	return true
}

// SyncLatency reports the configured per-round log flush latency. The commit
// pipeline consults it: rounds cheaper than scheduling noise aren't worth
// running speculatively.
func (s *Store) SyncLatency() time.Duration { return s.latency.LogAppend }

// LogEndLSN returns the append frontier of node's stream (the LSN the next
// append will land at), ahead of the durable frontier by the un-synced tail.
func (s *Store) LogEndLSN(node common.NodeID) common.LSN {
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.base + common.LSN(len(ls.buf))
}

// LogDurableLSN returns the durable frontier of node's stream.
func (s *Store) LogDurableLSN(node common.NodeID) common.LSN {
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.base + common.LSN(ls.durable)
}

// LogStartLSN returns the first retained LSN of node's stream (advanced by
// LogTruncate at checkpoints).
func (s *Store) LogStartLSN(node common.NodeID) common.LSN {
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.base
}

// LogRead reads up to len(buf) durable bytes starting at lsn. It returns the
// number of bytes read; n == 0 means lsn is at (or past) the durable
// frontier. Reading truncated history is a bug and returns ErrCorrupt.
func (s *Store) LogRead(node common.NodeID, lsn common.LSN, buf []byte) (int, error) {
	if err := s.inject(common.FaultLogRead, node, "log", len(buf), true); err != nil {
		return 0, err
	}
	s.latency.sleep(s.latency.LogRead)
	s.stats.LogReads.Inc()
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if lsn < ls.base {
		return 0, fmt.Errorf("storage: log read at %d below retained base %d: %w",
			lsn, ls.base, common.ErrCorrupt)
	}
	off := int(lsn - ls.base)
	if off >= ls.durable {
		return 0, nil
	}
	n := copy(buf, ls.buf[off:ls.durable])
	return n, nil
}

// LogCrashVolatile discards node's un-synced log tail, simulating the loss
// of the node's in-flight I/O at crash time.
func (s *Store) LogCrashVolatile(node common.NodeID) {
	ls := s.stream(node)
	ls.mu.Lock()
	ls.buf = ls.buf[:ls.durable]
	ls.mu.Unlock()
}

// FenceLog makes node's stream reject further appends and syncs. A survivor
// fences a dead node's stream before replaying it, so that even a zombie
// owner that is merely slow (not dead) cannot extend the log under the
// survivor's feet. Readers are unaffected.
func (s *Store) FenceLog(node common.NodeID) {
	ls := s.stream(node)
	ls.mu.Lock()
	ls.fenced = true
	ls.mu.Unlock()
}

// UnfenceLog re-opens node's stream for appends; called once takeover has
// replayed and truncated it, so a restarting incarnation writes cleanly.
func (s *Store) UnfenceLog(node common.NodeID) {
	ls := s.stream(node)
	ls.mu.Lock()
	ls.fenced = false
	ls.mu.Unlock()
}

// LogFenced reports whether node's stream is fenced.
func (s *Store) LogFenced(node common.NodeID) bool {
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.fenced
}

// LogTruncate discards the stream prefix below lsn (checkpointing). It is a
// no-op if lsn is below the current base or beyond the durable frontier.
func (s *Store) LogTruncate(node common.NodeID, lsn common.LSN) {
	ls := s.stream(node)
	ls.mu.Lock()
	if lsn <= ls.base || int(lsn-ls.base) > ls.durable {
		ls.mu.Unlock()
		return
	}
	cut := int(lsn - ls.base)
	ls.buf = append([]byte(nil), ls.buf[cut:]...)
	ls.durable -= cut
	ls.base = lsn
	ls.mu.Unlock()
	if s.persist != nil {
		s.persist.persistTruncate(node, ls)
	}
}

// LogShip appends shipped bytes to node's stream at the given LSN, for
// standby replication: the first shipment may start anywhere (it sets the
// stream base); later shipments must be contiguous. Shipped data is durable
// immediately (the standby's own store writes it down).
func (s *Store) LogShip(node common.NodeID, at common.LSN, data []byte) error {
	ls := s.stream(node)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	end := ls.base + common.LSN(len(ls.buf))
	if len(ls.buf) == 0 && ls.base == 0 {
		ls.base = at
		end = at
	}
	if at != end {
		return fmt.Errorf("storage: log ship at %d, stream end %d: %w", at, end, common.ErrCorrupt)
	}
	ls.buf = append(ls.buf, data...)
	ls.durable = len(ls.buf)
	ls.mu.Unlock()
	if s.persist != nil {
		s.persist.persistLog(node, ls)
	}
	ls.mu.Lock() // re-acquire for the deferred unlock
	return nil
}

// MetaKeys lists the metadata keys (replication support).
func (s *Store) MetaKeys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.meta))
	for k := range s.meta {
		out = append(out, k)
	}
	return out
}

// LogNodes lists every node id that has a log stream (used by full-cluster
// recovery to discover all log files).
func (s *Store) LogNodes() []common.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]common.NodeID, 0, len(s.logs))
	for id := range s.logs {
		out = append(out, id)
	}
	return out
}
