package storage

import (
	"bytes"
	"errors"
	"testing"

	"polardbmp/internal/common"
)

func TestPageReadWrite(t *testing.T) {
	s := New(Latency{})
	id := s.AllocPage()
	if id == common.InvalidPageID {
		t.Fatal("allocated invalid page id")
	}
	img := []byte{1, 2, 3, 4}
	if err := s.WritePage(id, img); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(id)
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("got %v err %v", got, err)
	}
	// Reads return copies.
	got[0] = 99
	again, _ := s.ReadPage(id)
	if again[0] != 1 {
		t.Fatal("ReadPage aliased internal storage")
	}
	if _, err := s.ReadPage(id + 100); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("missing page err = %v", err)
	}
}

func TestAllocPageUnique(t *testing.T) {
	s := New(Latency{})
	seen := map[common.PageID]bool{}
	for i := 0; i < 1000; i++ {
		id := s.AllocPage()
		if seen[id] {
			t.Fatalf("duplicate page id %d", id)
		}
		seen[id] = true
	}
}

func TestAllocAfterExplicitWrite(t *testing.T) {
	s := New(Latency{})
	if err := s.WritePage(500, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if id := s.AllocPage(); id <= 500 {
		t.Fatalf("alloc after explicit write returned %d, must exceed 500", id)
	}
}

func TestLogAppendSyncRead(t *testing.T) {
	s := New(Latency{})
	lsn := s.LogAppend(1, []byte("abc"))
	if lsn != 0 {
		t.Fatalf("first lsn = %d", lsn)
	}
	lsn = s.LogAppend(1, []byte("defg"))
	if lsn != 3 {
		t.Fatalf("second lsn = %d", lsn)
	}
	// Nothing durable yet.
	buf := make([]byte, 16)
	n, err := s.LogRead(1, 0, buf)
	if err != nil || n != 0 {
		t.Fatalf("read before sync: n=%d err=%v", n, err)
	}
	if d := s.LogSync(1); d != 7 {
		t.Fatalf("durable = %d", d)
	}
	n, err = s.LogRead(1, 0, buf)
	if err != nil || n != 7 || string(buf[:n]) != "abcdefg" {
		t.Fatalf("n=%d data=%q err=%v", n, buf[:n], err)
	}
	// Partial read from an offset.
	n, _ = s.LogRead(1, 3, buf)
	if string(buf[:n]) != "defg" {
		t.Fatalf("offset read = %q", buf[:n])
	}
}

func TestLogCrashVolatile(t *testing.T) {
	s := New(Latency{})
	s.LogAppend(1, []byte("durable"))
	s.LogSync(1)
	s.LogAppend(1, []byte("volatile"))
	s.LogCrashVolatile(1)
	if got := s.LogDurableLSN(1); got != 7 {
		t.Fatalf("durable after crash = %d", got)
	}
	// New appends land after the durable prefix.
	lsn := s.LogAppend(1, []byte("x"))
	if lsn != 7 {
		t.Fatalf("append after crash at lsn %d, want 7", lsn)
	}
}

func TestLogTruncate(t *testing.T) {
	s := New(Latency{})
	s.LogAppend(1, []byte("0123456789"))
	s.LogSync(1)
	s.LogTruncate(1, 4)
	if base := s.LogStartLSN(1); base != 4 {
		t.Fatalf("base = %d", base)
	}
	buf := make([]byte, 16)
	n, err := s.LogRead(1, 4, buf)
	if err != nil || string(buf[:n]) != "456789" {
		t.Fatalf("post-truncate read %q err %v", buf[:n], err)
	}
	if _, err := s.LogRead(1, 2, buf); !errors.Is(err, common.ErrCorrupt) {
		t.Fatalf("read below base err = %v", err)
	}
	// LSNs keep counting across truncation.
	if lsn := s.LogAppend(1, []byte("ab")); lsn != 10 {
		t.Fatalf("append lsn = %d", lsn)
	}
}

func TestLogNodes(t *testing.T) {
	s := New(Latency{})
	s.LogAppend(1, []byte("a"))
	s.LogAppend(5, []byte("b"))
	nodes := s.LogNodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestMeta(t *testing.T) {
	s := New(Latency{})
	if s.GetMeta("nope") != nil {
		t.Fatal("missing meta should be nil")
	}
	s.PutMeta("k", []byte("v1"))
	if got := s.GetMeta("k"); string(got) != "v1" {
		t.Fatalf("meta = %q", got)
	}
	got := s.GetMeta("k")
	got[0] = 'X'
	if string(s.GetMeta("k")) != "v1" {
		t.Fatal("GetMeta aliased internal storage")
	}
}
