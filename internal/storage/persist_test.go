package storage

import (
	"bytes"
	"testing"

	"polardbmp/internal/common"
)

func TestPersistPagesLogsMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	id := s.AllocPage()
	if err := s.WritePage(id, []byte("page-image")); err != nil {
		t.Fatal(err)
	}
	s.LogAppend(1, []byte("rec-one"))
	s.LogSync(1)
	s.LogAppend(1, []byte("volatile")) // never synced: must not persist
	s.PutMeta("spacedir", []byte("meta-blob"))

	// Re-open from disk.
	s2, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := s2.ReadPage(id)
	if err != nil || !bytes.Equal(img, []byte("page-image")) {
		t.Fatalf("page after reopen: %q, %v", img, err)
	}
	buf := make([]byte, 64)
	n, err := s2.LogRead(1, 0, buf)
	if err != nil || string(buf[:n]) != "rec-one" {
		t.Fatalf("log after reopen: %q, %v", buf[:n], err)
	}
	if got := s2.GetMeta("spacedir"); string(got) != "meta-blob" {
		t.Fatalf("meta after reopen: %q", got)
	}
	// Allocation never reuses ids from the previous incarnation.
	if next := s2.AllocPage(); next <= id {
		t.Fatalf("alloc after reopen = %d, must exceed %d", next, id)
	}
}

func TestPersistTruncateSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	s.LogAppend(2, []byte("0123456789"))
	s.LogSync(2)
	s.LogTruncate(2, 4)

	s2, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if base := s2.LogStartLSN(2); base != 4 {
		t.Fatalf("base after reopen = %d", base)
	}
	buf := make([]byte, 16)
	n, err := s2.LogRead(2, 4, buf)
	if err != nil || string(buf[:n]) != "456789" {
		t.Fatalf("post-truncate read after reopen: %q, %v", buf[:n], err)
	}
	// Appends continue at the right LSN.
	if lsn := s2.LogAppend(2, []byte("ab")); lsn != 10 {
		t.Fatalf("append lsn after reopen = %d", lsn)
	}
}

func TestPersistShipAndIncrementalAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogShip(3, 100, []byte("shipped")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDir(dir, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	// Shipped streams start at a non-zero base; the first persist records
	// it so reopen restores real LSNs.
	if base := s2.LogStartLSN(3); base != 100 {
		t.Fatalf("shipped base after reopen = %d, want 100", base)
	}
	buf := make([]byte, 16)
	n, err := s2.LogRead(3, common.LSN(100), buf)
	if err != nil || string(buf[:n]) != "shipped" {
		t.Fatalf("shipped data after reopen: %q, %v", buf[:n], err)
	}
}
