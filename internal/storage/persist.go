package storage

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"polardbmp/internal/common"
)

// Directory layout for a persistent store:
//
//	<dir>/pages/<id>.pg    one file per page image (write-through)
//	<dir>/logs/<node>.wal  one append-mostly file per redo stream
//	<dir>/meta/<hexkey>    metadata blobs
//	<dir>/alloc            page-id allocation watermark
//
// Persistence is write-through at durability points: page writes, log syncs
// and metadata puts hit the filesystem before returning. Files are written
// via create-then-rename so a torn process leaves whole files behind (the
// store trusts the OS page cache; it does not fsync — simulation-grade
// durability across process restarts, not power loss).

const (
	allocInterval = 256
	allocSlack    = 2 * allocInterval
)

// persister mirrors a Store's durable state into a directory.
type persister struct {
	dir string

	mu sync.Mutex
	// logPersisted tracks how many durable bytes of each stream are on
	// disk (relative to the stream base at last full rewrite).
	logPersisted map[common.NodeID]common.LSN
	allocMark    uint64
}

// OpenDir opens (or creates) a persistent store rooted at dir.
func OpenDir(dir string, latency Latency) (*Store, error) {
	for _, sub := range []string{"pages", "logs", "meta"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	s := New(latency)
	p := &persister{dir: dir, logPersisted: make(map[common.NodeID]common.LSN)}
	if err := p.load(s); err != nil {
		return nil, err
	}
	s.persist = p
	return s, nil
}

// load reads the directory into the in-memory store.
func (p *persister) load(s *Store) error {
	// Pages.
	entries, err := os.ReadDir(filepath.Join(p.dir, "pages"))
	if err != nil {
		return err
	}
	maxPage := uint64(0)
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".pg")
		id, err := strconv.ParseUint(name, 10, 64)
		if err != nil {
			continue
		}
		img, err := os.ReadFile(filepath.Join(p.dir, "pages", e.Name()))
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.pages[common.PageID(id)] = img
		s.mu.Unlock()
		if id > maxPage {
			maxPage = id
		}
	}
	// Logs: the whole file is durable content; its base is stored in the
	// first 16 bytes as "base:<16 hex>\n" is overkill — we persist base 0
	// streams only after truncation rewrites, so a sidecar carries the
	// base.
	lentries, err := os.ReadDir(filepath.Join(p.dir, "logs"))
	if err != nil {
		return err
	}
	for _, e := range lentries {
		if strings.HasSuffix(e.Name(), ".base") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".wal")
		id, err := strconv.ParseUint(name, 10, 16)
		if err != nil {
			continue
		}
		node := common.NodeID(id)
		data, err := os.ReadFile(filepath.Join(p.dir, "logs", e.Name()))
		if err != nil {
			return err
		}
		base := common.LSN(0)
		if raw, err := os.ReadFile(p.basePath(node)); err == nil {
			if v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); err == nil {
				base = common.LSN(v)
			}
		}
		ls := s.stream(node)
		ls.mu.Lock()
		ls.base = base
		ls.buf = data
		ls.durable = len(data)
		ls.mu.Unlock()
		p.logPersisted[node] = base + common.LSN(len(data))
	}
	// Metadata.
	mentries, err := os.ReadDir(filepath.Join(p.dir, "meta"))
	if err != nil {
		return err
	}
	for _, e := range mentries {
		key, err := hex.DecodeString(e.Name())
		if err != nil {
			continue
		}
		val, err := os.ReadFile(filepath.Join(p.dir, "meta", e.Name()))
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.meta[string(key)] = val
		s.mu.Unlock()
	}
	// Allocation watermark.
	next := maxPage + 1
	if raw, err := os.ReadFile(filepath.Join(p.dir, "alloc")); err == nil {
		if v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); err == nil && v > next {
			next = v
		}
	}
	s.mu.Lock()
	if next > s.nextPage {
		s.nextPage = next
	}
	s.mu.Unlock()
	p.allocMark = next
	return nil
}

func (p *persister) pagePath(id common.PageID) string {
	return filepath.Join(p.dir, "pages", fmt.Sprintf("%d.pg", id))
}

func (p *persister) logPath(node common.NodeID) string {
	return filepath.Join(p.dir, "logs", fmt.Sprintf("%d.wal", node))
}

func (p *persister) basePath(node common.NodeID) string {
	return filepath.Join(p.dir, "logs", fmt.Sprintf("%d.base", node))
}

// writeAtomic writes data to path via a temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (p *persister) persistPage(id common.PageID, img []byte) {
	_ = writeAtomic(p.pagePath(id), img)
}

func (p *persister) persistMeta(key string, val []byte) {
	_ = writeAtomic(filepath.Join(p.dir, "meta", hex.EncodeToString([]byte(key))), val)
}

// persistLog appends the newly-durable suffix of node's stream.
func (p *persister) persistLog(node common.NodeID, ls *logStream) {
	ls.mu.Lock()
	base := ls.base
	durableEnd := base + common.LSN(ls.durable)
	var tail []byte
	p.mu.Lock()
	from := p.logPersisted[node]
	if from < base {
		from = base
	}
	if durableEnd > from {
		tail = append([]byte(nil), ls.buf[from-base:ls.durable]...)
	}
	p.mu.Unlock()
	ls.mu.Unlock()
	if len(tail) == 0 {
		return
	}
	// First persist of a stream with a non-zero base (a shipped standby
	// stream): record the base so reopen restores the right LSNs.
	if from == base && base != 0 {
		_ = writeAtomic(p.basePath(node), []byte(strconv.FormatUint(uint64(base), 10)))
	}
	f, err := os.OpenFile(p.logPath(node), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	if _, err := f.Write(tail); err == nil {
		p.mu.Lock()
		p.logPersisted[node] = durableEnd
		p.mu.Unlock()
	}
	f.Close()
}

// persistTruncate rewrites node's log file after truncation.
func (p *persister) persistTruncate(node common.NodeID, ls *logStream) {
	ls.mu.Lock()
	base := ls.base
	data := append([]byte(nil), ls.buf[:ls.durable]...)
	ls.mu.Unlock()
	_ = writeAtomic(p.logPath(node), data)
	_ = writeAtomic(p.basePath(node), []byte(strconv.FormatUint(uint64(base), 10)))
	p.mu.Lock()
	p.logPersisted[node] = base + common.LSN(len(data))
	p.mu.Unlock()
}

// persistAlloc advances the on-disk allocation watermark when needed.
func (p *persister) persistAlloc(next uint64) {
	p.mu.Lock()
	need := next >= p.allocMark
	if need {
		p.allocMark = next + allocSlack
	}
	mark := p.allocMark
	p.mu.Unlock()
	if need {
		_ = writeAtomic(filepath.Join(p.dir, "alloc"), []byte(strconv.FormatUint(mark, 10)))
	}
}
