module polardbmp

go 1.22
