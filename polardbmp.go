// Package polardbmp is a from-scratch Go implementation of PolarDB-MP
// (SIGMOD 2024): a multi-primary cloud-native database built on
// disaggregated shared memory (PMFS — Transaction Fusion, Buffer Fusion,
// Lock Fusion) over disaggregated shared storage.
//
// Every node in a Cluster is a full primary: it executes complete
// transactions locally — no distributed transactions — while PMFS
// coordinates global transaction visibility (TSO + per-node transaction
// information tables read over one-sided RDMA), cache coherence (a
// distributed buffer pool with remote invalidation), and cross-node locking
// (page locks with lazy release, row locks embedded in the rows).
//
// Quick start:
//
//	db, _ := polardbmp.Open(polardbmp.Options{Nodes: 2})
//	defer db.Close()
//	accounts, _ := db.CreateTable("accounts")
//	tx, _ := db.Node(1).Begin()
//	tx.Insert(accounts, []byte("alice"), []byte("100"))
//	tx.Commit()
//	tx2, _ := db.Node(2).Begin() // a different primary
//	val, _ := tx2.Get(accounts, []byte("alice"))
//	tx2.Commit()
package polardbmp

import (
	"fmt"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/standby"
	"polardbmp/internal/storage"
	"polardbmp/internal/trace"
)

// Version identifies this build of the engine; the daemons (mpserver,
// mpgateway) report it via their -version flag.
const Version = "0.8.0"

// Re-exported error values; test with errors.Is.
var (
	ErrNotFound    = common.ErrNotFound
	ErrKeyExists   = common.ErrKeyExists
	ErrDeadlock    = common.ErrDeadlock
	ErrLockTimeout = common.ErrLockTimeout
	ErrTxDone      = common.ErrTxDone
	ErrNodeDown    = common.ErrNodeDown
	// ErrStaleEpoch rejects work from a node incarnation the cluster has
	// fenced (lease lost, survivors took over). The node must restart.
	ErrStaleEpoch = common.ErrStaleEpoch
	// ErrUnknownNode reports a node id never added to the cluster.
	ErrUnknownNode = core.ErrUnknownNode
	// ErrDeadlineExceeded fails a transaction whose latency budget (see
	// Node.BeginWithDeadline) is spent. NOT retryable: the budget models an
	// end-to-end SLO, so retrying inside it makes no sense — the caller
	// must roll back and decide at its own layer.
	ErrDeadlineExceeded = common.ErrDeadlineExceeded
	// ErrOverloaded rejects a request a fusion server shed under admission
	// control. Retryable: backing off and retrying is the intended
	// response, and the built-in retry policies already absorb brief
	// overloads transparently.
	ErrOverloaded = common.ErrOverloaded
	// ErrDraining refuses a Begin on a node that is gracefully leaving the
	// cluster (Cluster.Drain). Deliberately NOT retryable: the node will
	// never admit again, so the right response is to route the transaction
	// to another primary, not to retry here.
	ErrDraining = common.ErrDraining
	// ErrNotHosted reports an admin operation (e.g. draining a node) issued
	// to a process that does not host the node; drive it through the hosting
	// daemon's admin API instead.
	ErrNotHosted = core.ErrNotHosted
)

// IsRetryable reports whether err is a transient transaction failure
// (deadlock, lock timeout, fenced page during recovery, server overload)
// that the application should retry. ErrDeadlineExceeded is deliberately
// not retryable.
func IsRetryable(err error) bool { return common.IsRetryable(err) }

// Options configures a cluster.
type Options struct {
	// Nodes is the number of primary nodes in the INITIAL topology (default
	// 1) — it only shapes the cluster at Open. Scale online afterwards:
	// AddNode joins a new primary to the live cluster, Drain gracefully
	// removes one, and Topology reports the current membership.
	Nodes int
	// LocalBufferPages is each node's local buffer pool size in pages
	// (default 2048).
	LocalBufferPages int
	// SharedBufferPages is the distributed buffer pool size in pages
	// (default 8192).
	SharedBufferPages int
	// LockWaitTimeout bounds row-lock waits (default 2s).
	LockWaitTimeout time.Duration
	// RealisticStorageLatency injects cloud-storage I/O delays (~100µs),
	// as the benchmark harnesses do. Off by default for tests.
	RealisticStorageLatency bool
	// DataDir, when set, backs the shared store with a directory so the
	// database survives process restarts. Opening a non-empty directory
	// runs full-cluster recovery over its logs before serving.
	DataDir string
	// SelfHealing enables lease-based failure detection: every primary
	// heartbeats into shared memory and watches its peers, and when one
	// falls silent a survivor fences it under a new cluster epoch and
	// recovers its locks, transactions and redo automatically — no
	// CrashNode/RestartNode calls needed.
	SelfHealing bool
}

// Option tunes knobs beyond the basic Options struct. Options carries the
// deployment shape; functional options carry observability and other
// additive features, so new knobs never break Open call sites.
type Option func(*openConfig)

type openConfig struct {
	trace           *trace.Config
	lockWaitTimeout time.Duration
	admitPerStripe  int
	hedgeFloor      time.Duration
	fenceTTL        time.Duration
	pmfsReplicas    int
	cc              string
}

func (o *openConfig) tracing() *trace.Config {
	if o.trace == nil {
		o.trace = &trace.Config{}
	}
	return o.trace
}

// WithTracer enables the always-on commit-path span tracer on every node:
// per-stage latency/fabric-op histograms, a ring of recent transaction
// traces, and Tx.Info span timelines. Disabled tracing costs one pointer
// check per hook and zero allocations.
func WithTracer() Option {
	return func(o *openConfig) { o.tracing() }
}

// WithSlowTxThreshold enables tracing and logs every transaction slower
// than d into the per-node slow-transaction log (see ClusterStats.SlowTxs).
func WithSlowTxThreshold(d time.Duration) Option {
	return func(o *openConfig) { o.tracing().SlowTxThreshold = d }
}

// WithLockWaitTimeout bounds how long a transaction parks waiting for
// another transaction's row lock (default 2s). This is a backstop, not the
// primary contention control: deadlocks are caught by cycle detection at
// wait registration, before any timer runs, so a WaitTimeout expiry
// (ErrLockTimeout, retryable) only fires on genuinely slow holders. A
// transaction begun with BeginWithDeadline waits at most
// min(LockWaitTimeout, its remaining budget) — the budget expiry surfaces
// as the non-retryable ErrDeadlineExceeded instead.
func WithLockWaitTimeout(d time.Duration) Option {
	return func(o *openConfig) { o.lockWaitTimeout = d }
}

// WithAdmissionLimit bounds concurrently admitted requests per fusion-server
// stripe (Lock Fusion page-lock stripes and Buffer Fusion directory
// stripes). Over-limit requests are shed with the retryable ErrOverloaded
// instead of queuing without bound, keeping server queue time — and thus
// every caller's latency — bounded under overload. n < 0 disables shedding;
// 0 (or omitting the option) keeps the server defaults.
func WithAdmissionLimit(n int) Option {
	return func(o *openConfig) { o.admitPerStripe = n }
}

// WithHedgeDelayFloor sets the minimum delay before a slow shared-memory
// page read is hedged with a fallback read (fail-slow mitigation; the
// effective delay is max(floor, 8x the node's observed read latency)).
// d < 0 disables hedging; 0 keeps the default (1ms).
func WithHedgeDelayFloor(d time.Duration) Option {
	return func(o *openConfig) { o.hedgeFloor = d }
}

// WithFenceTTL sets how long a remote (satellite) storage client trusts its
// cached "not fenced" answer before re-asking the seed (default 100ms).
// Raise it on slow or lossy fabrics so log appends during a takeover keep
// failing fast from cache instead of racing the takeover with fresh RPCs.
// Non-positive values keep the default. In-process clusters have no remote
// storage client; the option is then a no-op.
func WithFenceTTL(d time.Duration) Option {
	return func(o *openConfig) { o.fenceTTL = d }
}

// WithCC selects the concurrency-control engine: "2pl" (default — the
// paper's pessimistic design, statement-time row claims with commit-time
// CTS stamping) or "occ" (optimistic — statements stage writes locally and
// never block; validation and apply happen at commit under leaf page locks,
// and a lost race surfaces as a retryable write-conflict error). Both run
// the same commit pipeline (TSO grant, group-committed log force, TIT
// publish). Unknown names fail Open.
func WithCC(name string) Option {
	return func(o *openConfig) { o.cc = name }
}

// WithPmfsReplicas sets the replication factor of the shared-memory tier
// (default 3): every PMFS mutation is mirrored across K replicas with
// quorum acknowledgement, and a replica fail-stop is absorbed by epoch-
// fenced failover instead of losing the tier. Values below 2 disable
// replication; 0 keeps the default.
func WithPmfsReplicas(k int) Option {
	return func(o *openConfig) { o.pmfsReplicas = k }
}

// Cluster is a PolarDB-MP deployment: N primary nodes over shared memory
// and shared storage.
type Cluster struct {
	c *core.Cluster
}

// Open builds a cluster with opts.Nodes primaries.
func Open(opts Options, extra ...Option) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	var oc openConfig
	for _, fn := range extra {
		fn(&oc)
	}
	if oc.cc != "" && !core.ValidCC(oc.cc) {
		return nil, fmt.Errorf("polardbmp: unknown concurrency-control engine %q (want %q or %q)", oc.cc, core.CC2PL, core.CCOCC)
	}
	cfg := core.Config{
		CC:              oc.cc,
		LBPFrames:       opts.LocalBufferPages,
		DBPFrames:       opts.SharedBufferPages,
		LockWaitTimeout: opts.LockWaitTimeout,
		SelfHeal:        opts.SelfHealing,
		Trace:           oc.trace,
		AdmitPerStripe:  oc.admitPerStripe,
		HedgeDelayFloor: oc.hedgeFloor,
		FenceTTL:        oc.fenceTTL,
		PmfsReplicas:    oc.pmfsReplicas,
	}
	if oc.lockWaitTimeout != 0 {
		cfg.LockWaitTimeout = oc.lockWaitTimeout
	}
	if opts.RealisticStorageLatency {
		cfg.StorageLatency = core.DefaultConfig().StorageLatency
	}
	var c *core.Cluster
	if opts.DataDir != "" {
		store, err := storage.OpenDir(opts.DataDir, cfg.StorageLatency)
		if err != nil {
			return nil, err
		}
		existing := store.PageCount() > 0
		c = core.NewClusterWithStore(cfg, store)
		if existing {
			if err := c.RecoverAll(); err != nil {
				return nil, fmt.Errorf("polardbmp: recovering %s: %w", opts.DataDir, err)
			}
		}
	} else {
		c = core.NewCluster(cfg)
	}
	for i := 0; i < opts.Nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			return nil, err
		}
	}
	return &Cluster{c: c}, nil
}

// Close flushes buffers and shuts the cluster down.
func (c *Cluster) Close() { c.c.Close() }

// Table names a tablespace (one B-tree index).
type Table struct {
	space common.SpaceID
	name  string
}

// Name returns the table's name.
func (t Table) Name() string { return t.name }

// CreateTable creates (or opens) a named table.
func (c *Cluster) CreateTable(name string) (Table, error) {
	sp, err := c.c.CreateSpace(name)
	if err != nil {
		return Table{}, err
	}
	return Table{space: sp, name: name}, nil
}

// NodeCount returns the number of live primaries.
//
// Deprecated: use Topology, which distinguishes active, joining, draining,
// drained, and crashed nodes instead of flattening membership to one count.
// Kept as a thin alias for one release.
func (c *Cluster) NodeCount() int { return len(c.c.Nodes()) }

// Node returns a handle on the i-th (1-based) primary.
func (c *Cluster) Node(i int) *Node {
	return &Node{c: c.c, id: common.NodeID(i)}
}

// NodeState is a node's topology state: NodeActive, NodeJoining,
// NodeDraining, NodeDrained, or NodeCrashed.
type NodeState = core.NodeState

// Topology node states.
const (
	NodeActive   = core.NodeActive
	NodeJoining  = core.NodeJoining
	NodeDraining = core.NodeDraining
	NodeDrained  = core.NodeDrained
	NodeCrashed  = core.NodeCrashed
)

// NodeInfo is one node's row in a Topology snapshot: id, state, incarnation
// epoch, and (for nodes hosted by this process) its in-flight session count.
type NodeInfo = core.NodeInfo

// Topology is a point-in-time membership snapshot. Its Epoch bumps on every
// join, drain, and eviction, so epochs observed over time are monotone and
// two equal-epoch snapshots describe the same topology.
type Topology = core.Topology

// Topology snapshots the cluster membership: every slot ever allocated, its
// state, incarnation, and — for nodes hosted in this process — the in-flight
// session count.
func (c *Cluster) Topology() (Topology, error) { return c.c.Topology() }

// AddNode scales the cluster out by one primary and returns its handle. The
// join is online: the new node allocates a membership slot (reusing slots of
// gracefully drained nodes), registers with the fusion services, and
// announces itself before serving — ongoing transactions on other primaries
// are never disturbed.
func (c *Cluster) AddNode() (*Node, error) {
	n, err := c.c.AddNode()
	if err != nil {
		return nil, err
	}
	return &Node{c: c.c, id: n.ID()}, nil
}

// Drain gracefully removes node i from the cluster: the node stops admitting
// new transactions (Begin returns ErrDraining), waits out its in-flight ones,
// flushes every dirty page it owns, releases its locks, and fences its
// incarnation cleanly. No takeover runs and no redo is replayed — in contrast
// to a crash, a graceful drain aborts zero transactions for membership
// reasons. The freed slot is reused by a future AddNode.
func (c *Cluster) Drain(i int) error { return c.c.DrainNode(common.NodeID(i)) }

// Remove takes node i out of the topology for good and frees its membership
// slot. A live node is drained first; a node already drained (or down after
// recovery) has only its slot freed.
func (c *Cluster) Remove(i int) error { return c.c.RemoveNode(common.NodeID(i)) }

// CrashNode fail-stops a node: volatile state is lost; its uncommitted
// transactions are rolled back when it restarts; other nodes keep serving.
// Returns ErrUnknownNode for an id that was never added, ErrNodeDown when
// the node is already down (no side effects either way).
func (c *Cluster) CrashNode(i int) error { return c.c.CrashNode(common.NodeID(i)) }

// KillNode fail-stops a node without telling the cluster anything — the
// undeclared failure SelfHealing exists for. Survivors detect the silence
// through the lease table and take over. Same error contract as CrashNode.
func (c *Cluster) KillNode(i int) error { return c.c.KillNode(common.NodeID(i)) }

// RestartNode recovers a crashed node (replaying its redo log, largely from
// the shared memory pool) and rejoins it.
func (c *Cluster) RestartNode(i int) (*Node, error) {
	n, err := c.c.RestartNode(common.NodeID(i))
	if err != nil {
		return nil, err
	}
	return &Node{c: c.c, id: n.ID()}, nil
}

// Checkpoint flushes all buffers to storage and truncates the redo logs.
// The cluster must be quiesced.
func (c *Cluster) Checkpoint() error { return c.c.Checkpoint() }

// Internal exposes the underlying engine cluster for the benchmark
// harnesses; applications should not need it.
func (c *Cluster) Internal() *core.Cluster { return c.c }

// ClusterStats is the cluster-wide observability snapshot: engine totals,
// fabric/storage/lock/membership counters, the per-node decomposition, and
// — when tracing is on — merged per-stage histograms and the slow-
// transaction log. All fields are JSON-tagged; json.Marshal of a snapshot
// is the wire format mpbench and mpshell emit.
type ClusterStats = core.ClusterStats

// FabricStats counts RDMA fabric verbs and bytes (one op per doorbell for
// vectored verbs).
type FabricStats = core.FabricStats

// NodeStats is one node's slice of a ClusterStats snapshot.
type NodeStats = core.NodeStats

// StageSnapshot summarizes one commit-pipeline stage: count, latency
// quantiles, and attributed fabric ops.
type StageSnapshot = trace.StageSnapshot

// TxSummary is a finished transaction's span timeline.
type TxSummary = trace.TxSummary

// TxInfo is a transaction's introspection snapshot (see Tx.Info).
type TxInfo = core.TxInfo

// Stats aggregates engine counters across nodes and PMFS.
func (c *Cluster) Stats() ClusterStats { return c.c.Stats() }

// Standby is a cross-region replica of the cluster, kept warm by shipping
// the write-ahead logs (§3). Promote turns it into a fresh primary cluster
// after a regional failure.
type Standby struct {
	sb *standby.Standby
}

// NewStandby attaches a standby region to the cluster's shared storage.
// Call Sync (or Run for continuous shipping) to replicate.
func (c *Cluster) NewStandby() *Standby {
	return &Standby{sb: standby.New(c.c.Store())}
}

// Sync ships everything durable since the last call.
func (s *Standby) Sync() error { return s.sb.Sync() }

// Run ships continuously at the given interval until Stop or Promote.
func (s *Standby) Run(interval time.Duration) { s.sb.Run(interval) }

// Stop halts continuous shipping.
func (s *Standby) Stop() { s.sb.Stop() }

// Lag returns the shipped-log deficit in bytes.
func (s *Standby) Lag() int64 { return s.sb.Lag() }

// Promote recovers the shipped state into a brand-new cluster (committed
// transactions durable, uncommitted rolled back). Add nodes to serve.
func (s *Standby) Promote() (*Cluster, error) {
	c, err := s.sb.Promote(core.Config{})
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Node is a handle on one primary. All handles to the same id observe the
// node's current incarnation, so a handle survives Crash/Restart cycles.
type Node struct {
	c  *core.Cluster
	id common.NodeID
}

// ID returns the node's 1-based id.
func (n *Node) ID() int { return int(n.id) }

// Live reports whether the node is currently serving.
func (n *Node) Live() bool {
	nd := n.c.Node(int(n.id))
	return nd != nil && nd.Live()
}

func (n *Node) engine() (*core.Node, error) {
	nd := n.c.Node(int(n.id))
	if nd == nil {
		return nil, fmt.Errorf("polardbmp: node %d: %w", n.id, common.ErrNodeDown)
	}
	return nd, nil
}

// Begin starts a read-committed transaction on this primary.
func (n *Node) Begin() (*Tx, error) {
	nd, err := n.engine()
	if err != nil {
		return nil, err
	}
	tx, err := nd.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// BeginSnapshot starts a snapshot-isolation transaction (read view fixed at
// begin).
func (n *Node) BeginSnapshot() (*Tx, error) {
	nd, err := n.engine()
	if err != nil {
		return nil, err
	}
	tx, err := nd.BeginIso(core.SnapshotIsolation)
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// BeginWithDeadline starts a read-committed transaction with a total
// latency budget of d. Every blocking step of the transaction — remote
// page-lock waits (bounded server-side, so an abandoned waiter never holds
// its queue slot), row-lock parks, shared-memory page fetches and their
// retry backoff — charges against the budget; once it is spent the
// transaction fails with the non-retryable ErrDeadlineExceeded and must be
// rolled back. d <= 0 is unbounded (identical to Begin).
func (n *Node) BeginWithDeadline(d time.Duration) (*Tx, error) {
	nd, err := n.engine()
	if err != nil {
		return nil, err
	}
	tx, err := nd.BeginDeadline(core.ReadCommitted, common.DeadlineAfter(d))
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// Tx is a transaction bound to one primary. Use from a single goroutine.
type Tx struct {
	tx *core.Tx
}

// Get returns key's value under the transaction's isolation level.
func (t *Tx) Get(tab Table, key []byte) ([]byte, error) {
	return t.tx.Get(tab.space, key)
}

// GetForUpdate is a locking read (SELECT ... FOR UPDATE): it returns the
// latest committed value and leaves the row locked by this transaction.
func (t *Tx) GetForUpdate(tab Table, key []byte) ([]byte, error) {
	return t.tx.GetForUpdate(tab.space, key)
}

// Insert adds a row; ErrKeyExists if a live row exists.
func (t *Tx) Insert(tab Table, key, value []byte) error {
	return t.tx.Insert(tab.space, key, value)
}

// Update replaces a row; ErrNotFound if no live row exists.
func (t *Tx) Update(tab Table, key, value []byte) error {
	return t.tx.Update(tab.space, key, value)
}

// Upsert inserts or replaces unconditionally.
func (t *Tx) Upsert(tab Table, key, value []byte) error {
	return t.tx.Upsert(tab.space, key, value)
}

// Delete removes a row; ErrNotFound if no live row exists.
func (t *Tx) Delete(tab Table, key []byte) error {
	return t.tx.Delete(tab.space, key)
}

// KV is a scan result row.
type KV = core.KV

// Scan returns up to limit visible rows with from <= key < to (nil bounds
// are open).
func (t *Tx) Scan(tab Table, from, to []byte, limit int) ([]KV, error) {
	return t.tx.Scan(tab.space, from, to, limit)
}

// Info returns the transaction's introspection snapshot: global id, state,
// commit timestamp, and — when the cluster was opened WithTracer — the
// span timeline. Call from the transaction's own goroutine.
func (t *Tx) Info() TxInfo { return t.tx.Info() }

// Commit makes the transaction durable and globally visible.
func (t *Tx) Commit() error { return t.tx.Commit() }

// Rollback undoes the transaction.
func (t *Tx) Rollback() error { return t.tx.Rollback() }
