package polardbmp_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polardbmp"
)

func open(t testing.TB, nodes int) *polardbmp.Cluster {
	t.Helper()
	db, err := polardbmp.Open(polardbmp.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := open(t, 2)
	accounts, err := db.CreateTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(accounts, []byte("alice"), []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Node(2).Begin()
	if err != nil {
		t.Fatal(err)
	}
	v, err := tx2.Get(accounts, []byte("alice"))
	if err != nil || string(v) != "100" {
		t.Fatalf("cross-node read = %q, %v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := open(t, 1)
	tab, _ := db.CreateTable("t")
	tx, _ := db.Node(1).Begin()
	if _, err := tx.Get(tab, []byte("missing")); !errors.Is(err, polardbmp.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	tx.Insert(tab, []byte("k"), []byte("v"))
	if err := tx.Insert(tab, []byte("k"), []byte("v2")); !errors.Is(err, polardbmp.ErrKeyExists) {
		t.Fatalf("dup err = %v", err)
	}
	tx.Rollback()
	if err := tx.Commit(); !errors.Is(err, polardbmp.ErrTxDone) {
		t.Fatalf("after rollback err = %v", err)
	}
}

func TestPublicAPIBankInvariant(t *testing.T) {
	db := open(t, 3)
	bank, _ := db.CreateTable("bank")
	const accounts = 20
	const initial = 100
	seed, _ := db.Node(1).Begin()
	for i := 0; i < accounts; i++ {
		if err := seed.Insert(bank, []byte(fmt.Sprintf("acct-%02d", i)), []byte(fmt.Sprintf("%d", initial))); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	transfer := func(n *polardbmp.Node, from, to string) error {
		tx, err := n.Begin()
		if err != nil {
			return err
		}
		a, err := tx.GetForUpdate(bank, []byte(from))
		if err != nil {
			tx.Rollback()
			return err
		}
		b, err := tx.GetForUpdate(bank, []byte(to))
		if err != nil {
			tx.Rollback()
			return err
		}
		var av, bv int
		fmt.Sscanf(string(a), "%d", &av)
		fmt.Sscanf(string(b), "%d", &bv)
		if av < 1 {
			return tx.Rollback()
		}
		if err := tx.Update(bank, []byte(from), []byte(fmt.Sprintf("%d", av-1))); err != nil {
			tx.Rollback()
			return err
		}
		if err := tx.Update(bank, []byte(to), []byte(fmt.Sprintf("%d", bv+1))); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Commit()
	}

	var wg sync.WaitGroup
	for n := 1; n <= 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			node := db.Node(n)
			for i := 0; i < 50; i++ {
				from := fmt.Sprintf("acct-%02d", (n*7+i)%accounts)
				to := fmt.Sprintf("acct-%02d", (n*13+i*3)%accounts)
				if from == to {
					continue
				}
				for {
					err := transfer(node, from, to)
					if err == nil || !polardbmp.IsRetryable(err) {
						break
					}
				}
			}
		}(n)
	}
	wg.Wait()

	// Conservation of money across all nodes' views.
	tx, _ := db.Node(2).Begin()
	defer tx.Commit()
	total := 0
	rows, err := tx.Scan(bank, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != accounts {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, kv := range rows {
		var v int
		fmt.Sscanf(string(kv.Value), "%d", &v)
		total += v
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*initial)
	}
}

func TestPublicAPICrashRestart(t *testing.T) {
	db := open(t, 2)
	tab, _ := db.CreateTable("t")
	tx, _ := db.Node(1).Begin()
	tx.Insert(tab, []byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.CrashNode(1)
	if db.Node(1).Live() {
		t.Fatal("node 1 still live after crash")
	}
	if _, err := db.Node(1).Begin(); !errors.Is(err, polardbmp.ErrNodeDown) {
		t.Fatalf("begin on dead node err = %v", err)
	}
	if _, err := db.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tx2.Get(tab, []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("post-restart read %q, %v", v, err)
	}
	tx2.Commit()
}

func TestPublicAPIAddNode(t *testing.T) {
	db := open(t, 1)
	tab, _ := db.CreateTable("t")
	tx, _ := db.Node(1).Begin()
	tx.Insert(tab, []byte("k"), []byte("v"))
	tx.Commit()

	n2, err := db.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if db.NodeCount() != 2 {
		t.Fatalf("node count = %d", db.NodeCount())
	}
	tx2, err := n2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tx2.Get(tab, []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("new node read %q, %v", v, err)
	}
	tx2.Commit()
}

// The façade's elastic surface: Topology reports states, Drain refuses new
// work with the typed ErrDraining while in-flight transactions commit, a
// rejoin reuses the drained slot, and Remove frees it for good.
func TestPublicAPIElasticity(t *testing.T) {
	db := open(t, 3)
	tab, _ := db.CreateTable("t")
	tx, _ := db.Node(3).Begin()
	tx.Insert(tab, []byte("k3"), []byte("v3"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	top, err := db.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 3 {
		t.Fatalf("topology rows = %d, want 3", len(top.Nodes))
	}
	for _, ni := range top.Nodes {
		if ni.State != polardbmp.NodeActive {
			t.Fatalf("node %d state %q, want active", ni.ID, ni.State)
		}
	}

	// Hold a transaction open on the victim so the drain has in-flight work
	// to wait for; it must commit normally — never abort — while new Begins
	// are refused with the typed ErrDraining.
	held, err := db.Node(3).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := held.Upsert(tab, []byte("held"), []byte("survives")); err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- db.Drain(3) }()
	deadline := 2000
	for {
		probe, err := db.Node(3).Begin()
		if errors.Is(err, polardbmp.ErrDraining) {
			break
		}
		if err != nil {
			t.Fatalf("begin on draining node: %v, want ErrDraining", err)
		}
		_ = probe.Rollback() // an admitted probe must not hold the drain open
		if deadline--; deadline == 0 {
			t.Fatal("drain never closed admission")
		}
		time.Sleep(time.Millisecond)
	}
	if err := held.Commit(); err != nil {
		t.Fatalf("in-flight commit during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	top, _ = db.Topology()
	var st polardbmp.NodeState
	for _, ni := range top.Nodes {
		if ni.ID == 3 {
			st = ni.State
		}
	}
	if st != polardbmp.NodeDrained {
		t.Fatalf("node 3 state %q after drain, want drained", st)
	}

	// The drained node's rows stay visible, and a rejoin reuses its slot.
	r, _ := db.Node(1).Begin()
	if v, err := r.Get(tab, []byte("held")); err != nil || string(v) != "survives" {
		t.Fatalf("post-drain read %q, %v", v, err)
	}
	r.Commit()
	n, err := db.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if n.ID() != 3 {
		t.Fatalf("rejoin got node %d, want the drained slot 3", n.ID())
	}
	if err := db.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(99); !errors.Is(err, polardbmp.ErrUnknownNode) {
		t.Fatalf("drain unknown node err = %v", err)
	}
}

func TestPublicAPISnapshot(t *testing.T) {
	db := open(t, 2)
	tab, _ := db.CreateTable("t")
	tx, _ := db.Node(1).Begin()
	tx.Insert(tab, []byte("k"), []byte("v0"))
	tx.Commit()

	snap, err := db.Node(2).BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Get(tab, []byte("k")); string(v) != "v0" {
		t.Fatalf("snap read %q", v)
	}
	w, _ := db.Node(1).Begin()
	w.Update(tab, []byte("k"), []byte("v1"))
	w.Commit()
	if v, _ := snap.Get(tab, []byte("k")); string(v) != "v0" {
		t.Fatalf("snapshot moved: %q", v)
	}
	snap.Commit()
}

func TestPersistentDataDir(t *testing.T) {
	dir := t.TempDir()
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, err := db.Node(1 + i%2).Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(tab, []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// A new "process": reopen from the directory.
	db2, err := polardbmp.Open(polardbmp.Options{Nodes: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tab2, err := db2.CreateTable("t") // opens the existing table
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db2.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	rows, err := tx.Scan(tab2, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("rows after reopen = %d, want 50", len(rows))
	}
	for i := 0; i < 50; i++ {
		v, err := tx.Get(tab2, []byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d = %q, %v", i, v, err)
		}
	}
}
