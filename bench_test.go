// Benchmarks regenerating the paper's evaluation (§5): one macro-benchmark
// per table/figure (driving the internal/figures harness in quick mode and
// reporting simulated throughput), micro-benchmarks for the §4.1 RDMA-path
// claims, and ablation benches for the design choices DESIGN.md calls out.
//
// Full-size sweeps: go run ./cmd/mpbench -fig all
package polardbmp_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"polardbmp"
	"polardbmp/internal/adapter"
	"polardbmp/internal/core"
	"polardbmp/internal/figures"
	"polardbmp/internal/workload"
)

// benchOpts returns a trimmed harness configuration so each figure bench
// completes in tens of seconds.
func benchOpts() figures.Options {
	return figures.Options{
		Out:      io.Discard,
		Quick:    true,
		Scale:    25,
		Duration: 700 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Threads:  2,
		Nodes:    []int{1, 2},
	}
}

func reportScaling(b *testing.B, points []figures.SweepPoint) {
	b.Helper()
	var max float64
	for _, p := range points {
		if p.Scaling > max {
			max = p.Scaling
		}
		if p.Nodes == points[len(points)-1].Nodes {
			b.ReportMetric(p.TPS, "sim-tps@"+fmt.Sprint(p.Nodes)+"n")
		}
	}
	b.ReportMetric(max, "best-scaling-x")
}

func BenchmarkFig07SysBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportScaling(b, figures.Fig7(benchOpts()))
	}
}

func BenchmarkFig08TATP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportScaling(b, figures.Fig8(benchOpts()))
	}
}

func BenchmarkFig09TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportScaling(b, figures.Fig9(benchOpts()))
	}
}

func BenchmarkFig10Production(b *testing.B) {
	o := benchOpts()
	o.Duration = 400 * time.Millisecond
	for i := 0; i < b.N; i++ {
		rates := figures.Fig10(o)
		var peak float64
		for _, r := range rates {
			if r > peak {
				peak = r
			}
		}
		b.ReportMetric(peak*float64(o.Scale), "peak-sim-tps")
	}
}

func BenchmarkFig11VsTaurus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := figures.Fig11(benchOpts())
		// Report the MP-vs-log-ship throughput ratio at the largest
		// cluster size (the paper's headline comparison).
		var mp, ls float64
		for _, p := range points {
			if p.Nodes != 2 {
				continue
			}
			if p.System == "polardb-mp" {
				mp = p.TPS
			} else {
				ls = p.TPS
			}
		}
		if ls > 0 {
			b.ReportMetric(mp/ls, "mp-vs-logship-x")
		}
	}
}

func BenchmarkFig12LightConflict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := figures.Fig12(benchOpts())
		var mp, occ float64
		for _, p := range points {
			if p.Nodes != 2 {
				continue
			}
			switch p.System {
			case "polardb-mp":
				mp = p.TPS
			case "occ(aurora)":
				occ = p.TPS
			}
		}
		if occ > 0 {
			b.ReportMetric(mp/occ, "mp-vs-occ-x")
		}
	}
}

func BenchmarkFig13GSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := figures.Fig13(benchOpts())
		// Report each system's throughput retention with 4 GSIs.
		for _, p := range points {
			if p.Shared == 4 {
				name := "mp-retain-pct"
				if p.System != "polardb-mp" {
					name = "2pc-retain-pct"
				}
				b.ReportMetric(p.Scaling*100, name)
			}
		}
	}
}

func BenchmarkFig15Recovery(b *testing.B) {
	o := benchOpts()
	o.Threads = 2
	for i := 0; i < b.N; i++ {
		_, _, recovery := figures.Fig15(o)
		b.ReportMetric(float64(recovery.Milliseconds()), "recovery-ms")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range figures.Ablations(benchOpts()) {
			b.ReportMetric(r.Improves, r.Name+"-x")
		}
	}
}

// --- micro-benchmarks: the §4.1/§4.2 fast paths, unscaled ------------------

// microCluster builds a latency-free 2-node cluster for per-op benches.
func microCluster(b *testing.B) *adapter.PolarDB {
	b.Helper()
	db, err := adapter.NewPolarDB(core.Config{RecycleInterval: 10 * time.Millisecond}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Cluster.Close)
	return db
}

// BenchmarkMicroTSOFetch measures the commit-timestamp fetch (§4.1: "usually
// fetched using a one-sided RDMA operation ... within several microseconds").
func BenchmarkMicroTSOFetch(b *testing.B) {
	db := microCluster(b)
	tf := db.Cluster.Node(1).TxFusion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tf.NextCommitCSN(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroTITRemoteRead measures Algorithm 1's remote path: resolving
// another node's transaction state with a one-sided TIT read.
func BenchmarkMicroTITRemoteRead(b *testing.B) {
	db := microCluster(b)
	tx, err := db.Cluster.Node(2).Begin()
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Rollback()
	g := tx.GTrxID()
	tf := db.Cluster.Node(1).TxFusion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tf.GetTrxCTS(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroLocalCommit measures a full single-statement write commit
// (log force included) on an otherwise idle node.
func BenchmarkMicroLocalCommit(b *testing.B) {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	n := db.Node(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := n.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Upsert(tab, []byte(fmt.Sprintf("k%06d", i%1000)), []byte("v")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSnapshotRead measures a read-committed point select.
func BenchmarkMicroSnapshotRead(b *testing.B) {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tab, _ := db.CreateTable("bench")
	tx, _ := db.Node(1).Begin()
	for i := 0; i < 1000; i++ {
		tx.Insert(tab, []byte(fmt.Sprintf("k%06d", i)), []byte("v"))
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.Node(1).Begin()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Get(tab, []byte(fmt.Sprintf("k%06d", i%1000))); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// BenchmarkMicroDBPTransfer measures a page ping-pong: node 1 updates, node
// 2 reads — the Buffer Fusion transfer path (§4.2).
func BenchmarkMicroDBPTransfer(b *testing.B) {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tab, _ := db.CreateTable("bench")
	seed, _ := db.Node(1).Begin()
	seed.Insert(tab, []byte("hot"), []byte("0"))
	seed.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := db.Node(1).Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Update(tab, []byte("hot"), []byte(fmt.Sprint(i))); err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			b.Fatal(err)
		}
		r, err := db.Node(2).Begin()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Get(tab, []byte("hot")); err != nil {
			b.Fatal(err)
		}
		r.Commit()
	}
}

// BenchmarkMicroLazyPLockLocalGrant measures the §4.3.1 fast path: a PLock
// re-granted locally from the lazy retention cache.
func BenchmarkMicroLazyPLockLocalGrant(b *testing.B) {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tab, _ := db.CreateTable("bench")
	seed, _ := db.Node(1).Begin()
	seed.Insert(tab, []byte("k"), []byte("v"))
	seed.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Node(1).Begin()
		if _, err := tx.Get(tab, []byte("k")); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// BenchmarkMicroRecovery measures single-node crash recovery for a log tail
// of ~1000 committed writes.
func BenchmarkMicroRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := adapter.NewPolarDB(core.Config{}, 2)
		if err != nil {
			b.Fatal(err)
		}
		tab, err := db.CreateTable("bench")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1000; j++ {
			tx, _ := db.Begin(0)
			tx.Insert(tab, []byte(fmt.Sprintf("k%06d", j)), []byte("v"))
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		db.Cluster.CrashNode(1)
		b.StartTimer()
		if _, err := db.Cluster.RestartNode(1); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Cluster.Close()
		b.StartTimer()
	}
}

// BenchmarkMicroWorkloadThroughput is a plain (unscaled) sanity benchmark:
// raw engine throughput on the TATP mix, two nodes.
func BenchmarkMicroWorkloadThroughput(b *testing.B) {
	db, err := adapter.NewPolarDB(core.Config{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Cluster.Close()
	ta := workload.DefaultTATP(2)
	ta.SubscribersPerNode = 500
	if err := ta.Load(db); err != nil {
		b.Fatal(err)
	}
	txf := ta.TxFunc(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := txf(db, i%2); err != nil {
			b.Fatal(err)
		}
	}
}
